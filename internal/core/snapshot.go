package core

import (
	"fmt"
	"strings"

	"vscsistats/internal/histogram"
)

// Metric names the collector's histogram families.
type Metric string

// Metrics collected by the service.
const (
	MetricIOLength     Metric = "ioLength"
	MetricSeekDistance Metric = "seekDistance"
	MetricSeekWindowed Metric = "seekDistanceWindowed"
	MetricOutstanding  Metric = "outstandingIOs"
	MetricLatency      Metric = "latency"
	MetricInterarrival Metric = "interarrival"
)

// Metrics lists every metric family in display order.
func Metrics() []Metric {
	return []Metric{MetricIOLength, MetricSeekDistance, MetricSeekWindowed,
		MetricOutstanding, MetricLatency, MetricInterarrival}
}

// Class selects the operation breakdown of a metric.
type Class int

// Breakdown classes (§3.4: "we also separate out histograms for read and
// write commands").
const (
	All Class = iota
	Reads
	Writes
)

// String names the class.
func (cl Class) String() string {
	switch cl {
	case Reads:
		return "reads"
	case Writes:
		return "writes"
	default:
		return "all"
	}
}

// Snapshot is an immutable copy of everything a collector has gathered.
type Snapshot struct {
	VM, Disk string

	IOLength     [3]*histogram.Snapshot
	SeekDistance [3]*histogram.Snapshot
	SeekWindowed *histogram.Snapshot
	Outstanding  [3]*histogram.Snapshot
	Latency      [3]*histogram.Snapshot
	Interarrival [3]*histogram.Snapshot

	Commands   int64
	NumReads   int64
	NumWrites  int64
	ReadBytes  int64
	WriteBytes int64
	Errors     int64
}

// Snapshot copies the collector's current state. It returns nil if the
// service has never been enabled (no data structures exist).
//
// Snapshot is safe to call while other goroutines issue commands or Reset
// the collector: the histogram set pointer is loaded once, so the copy is
// taken from one consistent set. Concurrent inserts may straddle the copy
// (per-histogram tearing the paper deems acceptable for monitoring), but a
// half-built or discarded set is never observed.
func (c *Collector) Snapshot() *Snapshot {
	h := c.h.Load()
	if h == nil {
		return nil
	}
	c.self.noteSnapshot()
	s := &Snapshot{
		VM:           c.vm,
		Disk:         c.disk,
		SeekWindowed: h.seekWindowed.Snapshot(),
		Commands:     h.commands.Load(),
		NumReads:     h.reads.Load(),
		NumWrites:    h.writes.Load(),
		ReadBytes:    h.readBytes.Load(),
		WriteBytes:   h.writeBytes.Load(),
		Errors:       h.errors.Load(),
	}
	for class := 0; class < 3; class++ {
		s.IOLength[class] = h.ioLength[class].Snapshot()
		s.SeekDistance[class] = h.seekDistance[class].Snapshot()
		s.Outstanding[class] = h.outstanding[class].Snapshot()
		s.Latency[class] = h.latency[class].Snapshot()
		s.Interarrival[class] = h.interarrival[class].Snapshot()
	}
	return s
}

// Histogram returns the named histogram for the given class. The windowed
// seek-distance metric has no read/write breakdown; all classes return the
// same histogram for it.
func (s *Snapshot) Histogram(m Metric, cl Class) *histogram.Snapshot {
	switch m {
	case MetricIOLength:
		return s.IOLength[cl]
	case MetricSeekDistance:
		return s.SeekDistance[cl]
	case MetricSeekWindowed:
		return s.SeekWindowed
	case MetricOutstanding:
		return s.Outstanding[cl]
	case MetricLatency:
		return s.Latency[cl]
	case MetricInterarrival:
		return s.Interarrival[cl]
	default:
		return nil
	}
}

// ReadFraction returns reads as a fraction of all block I/Os, in [0,1].
func (s *Snapshot) ReadFraction() float64 {
	if s.Commands == 0 {
		return 0
	}
	return float64(s.NumReads) / float64(s.Commands)
}

// Sub returns the interval snapshot s minus earlier: every histogram and
// counter becomes the delta accumulated between the two snapshots. Used by
// the interval recorder for the paper's "histogram over time" figures and
// by fleet history queries for windowed views of the segment log. A nil
// earlier means "since the beginning": the interval is everything s ever
// accumulated, so s itself is returned (snapshots are immutable, sharing
// is safe).
func (s *Snapshot) Sub(earlier *Snapshot) *Snapshot {
	if earlier == nil {
		return s
	}
	d := &Snapshot{
		VM:           s.VM,
		Disk:         s.Disk,
		SeekWindowed: s.SeekWindowed.Sub(earlier.SeekWindowed),
		Commands:     s.Commands - earlier.Commands,
		NumReads:     s.NumReads - earlier.NumReads,
		NumWrites:    s.NumWrites - earlier.NumWrites,
		ReadBytes:    s.ReadBytes - earlier.ReadBytes,
		WriteBytes:   s.WriteBytes - earlier.WriteBytes,
		Errors:       s.Errors - earlier.Errors,
	}
	for class := 0; class < 3; class++ {
		d.IOLength[class] = s.IOLength[class].Sub(earlier.IOLength[class])
		d.SeekDistance[class] = s.SeekDistance[class].Sub(earlier.SeekDistance[class])
		d.Outstanding[class] = s.Outstanding[class].Sub(earlier.Outstanding[class])
		d.Latency[class] = s.Latency[class].Sub(earlier.Latency[class])
		d.Interarrival[class] = s.Interarrival[class].Sub(earlier.Interarrival[class])
	}
	return d
}

// ApplyDelta returns the snapshot equal to s plus the interval delta d
// (as produced by Sub): counters add and every histogram reapplies
// bin-wise, so for any two snapshots of one collector
//
//	later == earlier.ApplyDelta(later.Sub(earlier))
//
// exactly, across all six metrics and three classes. The receiver and the
// delta are left untouched; the result is freshly allocated. This is the
// aggregator side of the fleet delta-push protocol.
func (s *Snapshot) ApplyDelta(d *Snapshot) *Snapshot {
	out := &Snapshot{
		VM:           s.VM,
		Disk:         s.Disk,
		SeekWindowed: s.SeekWindowed.ApplyDelta(d.SeekWindowed),
		Commands:     s.Commands + d.Commands,
		NumReads:     s.NumReads + d.NumReads,
		NumWrites:    s.NumWrites + d.NumWrites,
		ReadBytes:    s.ReadBytes + d.ReadBytes,
		WriteBytes:   s.WriteBytes + d.WriteBytes,
		Errors:       s.Errors + d.Errors,
	}
	for class := 0; class < 3; class++ {
		out.IOLength[class] = s.IOLength[class].ApplyDelta(d.IOLength[class])
		out.SeekDistance[class] = s.SeekDistance[class].ApplyDelta(d.SeekDistance[class])
		out.Outstanding[class] = s.Outstanding[class].ApplyDelta(d.Outstanding[class])
		out.Latency[class] = s.Latency[class].ApplyDelta(d.Latency[class])
		out.Interarrival[class] = s.Interarrival[class].ApplyDelta(d.Interarrival[class])
	}
	return out
}

// StateEquals reports whether two snapshots carry identical observed state:
// every counter and, per histogram, total, sum, extrema and each bin. Names
// (VM/Disk) are not compared — rollups rename. A fleet agent uses this to
// omit unchanged disks from delta pushes, so it must be exact, not
// approximate: if StateEquals holds, replaying nothing reconstructs o
// from s.
func (s *Snapshot) StateEquals(o *Snapshot) bool {
	if s == nil || o == nil {
		return s == o
	}
	if s.Commands != o.Commands || s.NumReads != o.NumReads || s.NumWrites != o.NumWrites ||
		s.ReadBytes != o.ReadBytes || s.WriteBytes != o.WriteBytes || s.Errors != o.Errors {
		return false
	}
	for _, m := range Metrics() {
		classes := []Class{All, Reads, Writes}
		if m == MetricSeekWindowed {
			classes = classes[:1]
		}
		for _, cl := range classes {
			ha, hb := s.Histogram(m, cl), o.Histogram(m, cl)
			if ha == nil || hb == nil {
				if ha != hb {
					return false
				}
				continue
			}
			if ha.Total != hb.Total || ha.Sum != hb.Sum || ha.Min != hb.Min || ha.Max != hb.Max {
				return false
			}
			if len(ha.Counts) != len(hb.Counts) {
				return false
			}
			for i := range ha.Counts {
				if ha.Counts[i] != hb.Counts[i] {
					return false
				}
			}
		}
	}
	return true
}

// Summary renders a one-screen textual overview: counters plus the modal
// bin of each primary histogram.
func (s *Snapshot) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "VM %s disk %s: %d commands (%d reads, %d writes, %.0f%% reads), %d errors\n",
		s.VM, s.Disk, s.Commands, s.NumReads, s.NumWrites, 100*s.ReadFraction(), s.Errors)
	fmt.Fprintf(&b, "  bytes: read %d, written %d\n", s.ReadBytes, s.WriteBytes)
	for _, m := range Metrics() {
		h := s.Histogram(m, All)
		if h == nil || h.Total == 0 {
			continue
		}
		mode, modeCount := 0, int64(-1)
		for i, c := range h.Counts {
			if c > modeCount {
				mode, modeCount = i, c
			}
		}
		fmt.Fprintf(&b, "  %-22s mean=%-12.1f mode=%s (%d of %d)\n",
			string(m), h.Mean(), h.BinLabel(mode), modeCount, h.Total)
	}
	return b.String()
}

// Render renders the selected histograms as ASCII charts.
func (s *Snapshot) Render(metrics []Metric, cl Class) string {
	var b strings.Builder
	for _, m := range metrics {
		h := s.Histogram(m, cl)
		if h == nil {
			continue
		}
		b.WriteString(h.Render(50))
		b.WriteByte('\n')
	}
	return b.String()
}
