package core

import (
	"testing"

	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

// seekLatencyRig wires a Collector2D to a disk whose latency depends on
// seek distance, so the correlation is visible in the grid.
func newSeekLatencyRig(t *testing.T) (*simclock.Engine, *vscsi.Disk, *Collector2D) {
	t.Helper()
	eng := simclock.NewEngine()
	var lastEnd uint64
	backend := vscsi.BackendFunc(func(r *vscsi.Request, done func(scsi.Status, scsi.Sense)) {
		d := int64(r.Cmd.LBA) - int64(lastEnd)
		lastEnd = r.Cmd.LastLBA()
		lat := 200 * simclock.Microsecond
		if d < -1000 || d > 1000 {
			lat = 20 * simclock.Millisecond
		}
		eng.After(lat, func(simclock.Time) { done(scsi.StatusGood, scsi.Sense{}) })
	})
	disk := vscsi.NewDisk(eng, backend, vscsi.DiskConfig{VM: "v", Name: "d", CapacitySectors: 1 << 30})
	c2 := NewCollector2D("v", "d")
	c2.Enable()
	disk.AddObserver(c2)
	return eng, disk, c2
}

func TestCollector2DCorrelatesSeekWithLatency(t *testing.T) {
	eng, disk, c2 := newSeekLatencyRig(t)
	// Alternate sequential runs and far jumps, serialized so the backend's
	// distance computation matches the collector's.
	lba := uint64(0)
	var issue func(i int)
	issue = func(i int) {
		if i >= 100 {
			return
		}
		if i%10 == 0 {
			lba += 20_000_000 // far jump (10 jumps stay inside the disk)
		} else {
			// sequential continuation: lba already points past last I/O
		}
		disk.Issue(scsi.Read(lba, 8), func(*vscsi.Request) { issue(i + 1) })
		lba += 8
	}
	issue(0)
	eng.Run()
	s := c2.Snapshot()
	if s.Total != 99 { // first command has no predecessor
		t.Fatalf("Total = %d", s.Total)
	}
	// Sequential commands (seek 1) must sit in low-latency cells, far
	// seeks in high-latency cells: check the conditional distributions.
	var seqBin, farBin int
	for i := range s.XEdges {
		if s.XEdges[i] == 2 {
			seqBin = i
		}
	}
	farBin = len(s.XEdges) // overflow
	seqLat := s.ConditionalY(seqBin)
	farLat := s.ConditionalY(farBin)
	if seqLat.Total == 0 || farLat.Total == 0 {
		t.Fatalf("conditionals empty: seq=%d far=%d\n%s", seqLat.Total, farLat.Total, s)
	}
	if seqLat.Max > 1000 {
		t.Errorf("sequential latency max = %d us, want fast", seqLat.Max)
	}
	if farLat.Percentile(50) < 15000 {
		t.Errorf("far-seek latency p50 = %d us, want slow", farLat.Percentile(50))
	}
}

func TestCollector2DDisabledAndErrors(t *testing.T) {
	eng, disk, c2 := newSeekLatencyRig(t)
	c2.Disable()
	disk.Issue(scsi.Read(0, 8), nil)
	disk.Issue(scsi.Read(8, 8), nil)
	eng.Run()
	if got := c2.Snapshot().Total; got != 0 {
		t.Errorf("disabled collector recorded %d", got)
	}
	if !c2.Enabled() {
		c2.Enable()
	}
	if NewCollector2D("a", "b").Snapshot() != nil {
		t.Error("never-enabled snapshot should be nil")
	}
}

func TestCollector2DSkipsFailedCommands(t *testing.T) {
	eng := simclock.NewEngine()
	backend := vscsi.BackendFunc(func(r *vscsi.Request, done func(scsi.Status, scsi.Sense)) {
		done(scsi.StatusCheckCondition, scsi.SenseUnrecoveredRead)
	})
	disk := vscsi.NewDisk(eng, backend, vscsi.DiskConfig{VM: "v", Name: "d", CapacitySectors: 1 << 20})
	c2 := NewCollector2D("v", "d")
	c2.Enable()
	disk.AddObserver(c2)
	disk.Issue(scsi.Read(0, 8), nil)
	disk.Issue(scsi.Read(8, 8), nil)
	eng.Run()
	if got := c2.Snapshot().Total; got != 0 {
		t.Errorf("failed commands contributed %d samples", got)
	}
	// The in-flight map must not leak entries for failed commands.
	if len(c2.seekOf) != 0 {
		t.Errorf("seekOf leaked %d entries", len(c2.seekOf))
	}
}
