package core

import (
	"fmt"
	"sort"
	"sync"
)

// Registry tracks the collectors of every virtual disk on a host and powers
// the paper's command-line utility ("we've added a command line utility to
// enable and disable these stats"): collectors are addressed by VM and disk
// name, and can be toggled individually or en masse.
//
// A Registry is safe for concurrent use: lookups and listings take a read
// lock, so any number of monitoring goroutines (e.g. httpstats handlers)
// can poll while simulations register, unregister and toggle collectors.
// Several hosts may share one registry (see hypervisor.NewHostOn).
type Registry struct {
	mu         sync.RWMutex
	collectors map[string]*Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{collectors: make(map[string]*Collector)}
}

func key(vm, disk string) string { return vm + "/" + disk }

// Register adds a collector. Registering a second collector for the same
// (vm, disk) pair is a configuration error and panics.
func (r *Registry) Register(c *Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(c.VM(), c.Disk())
	if _, dup := r.collectors[k]; dup {
		panic(fmt.Sprintf("core: duplicate collector for %s", k))
	}
	r.collectors[k] = c
}

// Unregister removes the collector for (vm, disk); unknown pairs are a
// no-op. The collector itself keeps working for anyone still holding it.
func (r *Registry) Unregister(vm, disk string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.collectors, key(vm, disk))
}

// Lookup returns the collector for (vm, disk), or nil.
func (r *Registry) Lookup(vm, disk string) *Collector {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.collectors[key(vm, disk)]
}

// List returns all registered collectors sorted by VM then disk name.
func (r *Registry) List() []*Collector {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Collector, 0, len(r.collectors))
	for _, c := range r.collectors {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].VM() != out[j].VM() {
			return out[i].VM() < out[j].VM()
		}
		return out[i].Disk() < out[j].Disk()
	})
	return out
}

// EnableAll turns the service on for every disk.
func (r *Registry) EnableAll() {
	for _, c := range r.List() {
		c.Enable()
	}
}

// DisableAll turns the service off everywhere without discarding data.
func (r *Registry) DisableAll() {
	for _, c := range r.List() {
		c.Disable()
	}
}

// ResetAll discards accumulated data everywhere.
func (r *Registry) ResetAll() {
	for _, c := range r.List() {
		c.Reset()
	}
}

// Snapshots returns a snapshot per enabled-at-least-once collector.
func (r *Registry) Snapshots() []*Snapshot {
	var out []*Snapshot
	for _, c := range r.List() {
		if s := c.Snapshot(); s != nil {
			out = append(out, s)
		}
	}
	return out
}
