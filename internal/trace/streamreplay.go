package trace

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"vscsistats/internal/core"
	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

// This file is the streaming replacement for the materialize-and-sort core
// of Replay. The paper's closing claim — "whether calculating online or
// replaying a trace, the resulting CPU cost is O(n)" — does not survive a
// global sort.SliceStable over 2·n events, and the O(n) transient memory
// does not survive a multi-gigabyte trace at all. The engine here replays
// from any RecordSource in one pass with O(workers·batch + mergeWindow)
// resident memory:
//
//   - ReplayParallel demultiplexes the stream into per-(VM, disk)
//     substreams, fans them out across a worker pool (a disk sticks to one
//     worker, so per-disk issue order — the only order the collector's
//     stream-correlated metrics depend on — is preserved without locks),
//     and drives each disk's own collector through the batched
//     OnIssueBatch fast path. Per-VM and cluster views merge bin-exactly
//     via core.Aggregate, exactly like the live registry rollups.
//   - ReplayMerged reproduces the legacy single-collector semantics (all
//     substreams interleaved into one command stream) by running the
//     k-way MergeSource in front of one collector — O(n log k) in place
//     of O(n log n), with bounded lookahead in place of materializing the
//     trace.
//
// Replay order and bin-exactness: the collector's issue-side metrics
// depend only on the relative order of OnIssue calls within one collector,
// and OnComplete shares no state with OnIssue (latency is carried by the
// record, errors are a counter). So completions may be delivered with
// their record's batch rather than interleaved by completion timestamp,
// and per-disk collectors may progress independently: the histograms are
// bit-identical to the legacy event-sorted replay. The property tests in
// streamreplay_test.go pin both equalities across every metric, class and
// worker count.

// ReplayConfig tunes the streaming replay engine. The zero value takes
// every documented default.
type ReplayConfig struct {
	// Workers is the fan-out of ReplayParallel (default GOMAXPROCS).
	// Substreams are assigned to workers round-robin in first-seen order,
	// so any worker count produces bit-identical histograms.
	Workers int
	// BatchSize is the burst pushed per OnIssueBatch call (default 512).
	BatchSize int
	// QueueDepth is the number of batches buffered per worker (default 8).
	// Resident replay memory is O(Workers · QueueDepth · BatchSize).
	QueueDepth int
	// Window is the collectors' windowed seek-distance look-behind
	// (default core.DefaultWindow).
	Window int
	// MergeWindow controls the k-way issue-order merge lookahead:
	// 0 applies the entry point's default (ReplayMerged merges with
	// DefaultMergeWindow; ReplayParallel trusts per-disk capture order and
	// does not merge), > 0 forces a merge with that lookahead, < 0
	// disables merging entirely.
	MergeWindow int
	// Registry, if non-nil, has each per-disk collector Registered as it
	// is created, so a live httpstats handler can scrape a replay in
	// flight. ReplayParallel only.
	Registry *core.Registry
	// Progress, if non-nil, is called from the demultiplexing goroutine
	// every ProgressEvery records (default 1<<20) with the running count.
	Progress      func(records uint64)
	ProgressEvery uint64
}

func (cfg ReplayConfig) withDefaults() ReplayConfig {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 512
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.Window <= 0 {
		cfg.Window = core.DefaultWindow
	}
	if cfg.ProgressEvery == 0 {
		cfg.ProgressEvery = 1 << 20
	}
	return cfg
}

// ReplayStats summarizes one streaming replay.
type ReplayStats struct {
	// Records is the number of records consumed from the source.
	Records uint64
	// Disks is the number of distinct (VM, disk) substreams seen.
	Disks int
	// Batches is the number of OnIssueBatch bursts pushed.
	Batches uint64
	// OrderViolations counts records that arrived out of issue order
	// within their substream (or, with a merge, past the lookahead
	// window). The replay still completes; the stream-correlated
	// histograms of the affected disk may differ from a sorted replay.
	OrderViolations uint64
}

// ReplayResult is the outcome of ReplayParallel: one collector per
// (VM, disk) substream, in first-seen order.
type ReplayResult struct {
	Stats ReplayStats
	cols  []*core.Collector
}

// Collectors returns the per-disk collectors in first-seen order.
func (r *ReplayResult) Collectors() []*core.Collector { return r.cols }

// Merged returns the cluster-wide rollup of every replayed disk, merged
// bin-exactly via core.Aggregate (nil if the trace was empty).
func (r *ReplayResult) Merged() *core.Snapshot {
	snaps := make([]*core.Snapshot, 0, len(r.cols))
	for _, c := range r.cols {
		if s := c.Snapshot(); s != nil {
			snaps = append(snaps, s)
		}
	}
	return core.Aggregate("*", "*", snaps...)
}

// VMSnapshot merges the replayed disks of one VM (nil if it has none).
func (r *ReplayResult) VMSnapshot(vm string) *core.Snapshot {
	var snaps []*core.Snapshot
	for _, c := range r.cols {
		if c.VM() != vm {
			continue
		}
		if s := c.Snapshot(); s != nil {
			snaps = append(snaps, s)
		}
	}
	return core.Aggregate(vm, "*", snaps...)
}

// fillRequest rebuilds the vSCSI request a record describes, exactly as
// the legacy replay did.
func fillRequest(q *vscsi.Request, rec *Record) {
	q.ID = rec.Seq
	q.VM = rec.VM
	q.Disk = rec.Disk
	q.Cmd = scsi.Command{Op: rec.Op, LBA: rec.LBA, Blocks: rec.Blocks}
	q.IssueTime = simclock.Time(rec.IssueMicros) * simclock.Microsecond
	q.CompleteTime = simclock.Time(rec.CompleteMicros) * simclock.Microsecond
	q.OutstandingAtIssue = int(rec.Outstanding)
	q.Status = rec.Status
}

// reqSlab is a reusable batch of requests: records are transcribed into
// the slab, issued as one burst, then completed. The slab never escapes
// its owner, so a replay allocates requests once per worker, not once per
// record.
type reqSlab struct {
	reqs []vscsi.Request
	ptrs []*vscsi.Request
}

func newReqSlab(n int) *reqSlab {
	s := &reqSlab{reqs: make([]vscsi.Request, n), ptrs: make([]*vscsi.Request, n)}
	for i := range s.reqs {
		s.ptrs[i] = &s.reqs[i]
	}
	return s
}

// replay pushes recs through col as one burst: issues batched, then the
// matching completions.
func (s *reqSlab) replay(col *core.Collector, recs []Record) {
	if len(recs) > len(s.reqs) {
		*s = *newReqSlab(len(recs))
	}
	n := len(recs)
	for i := range recs {
		fillRequest(s.ptrs[i], &recs[i])
	}
	col.OnIssueBatch(s.ptrs[:n])
	for _, q := range s.ptrs[:n] {
		col.OnComplete(q)
	}
}

// ReplayMerged feeds a trace through one collector with the legacy
// single-stream semantics — every substream interleaved in global issue
// order — using the k-way streaming merge and the batched issue path. It
// is bin-exact against Replay for every metric and class, in O(n log k)
// time and O(mergeWindow + batch) memory.
func ReplayMerged(src RecordSource, col *core.Collector, cfg ReplayConfig) (ReplayStats, error) {
	cfg = cfg.withDefaults()
	var stats ReplayStats
	var merge *MergeSource
	if cfg.MergeWindow >= 0 {
		merge = NewMergeSource(src, cfg.MergeWindow)
		src = merge
	}
	col.Enable()
	slab := newReqSlab(cfg.BatchSize)
	batch := make([]Record, 0, cfg.BatchSize)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		slab.replay(col, batch)
		stats.Batches++
		batch = batch[:0]
	}
	seen := make(map[diskKey]struct{})
	for {
		batch = batch[:len(batch)+1]
		err := src.Next(&batch[len(batch)-1])
		if err != nil {
			batch = batch[:len(batch)-1]
			flush()
			if merge != nil {
				stats.OrderViolations = merge.Violations()
			}
			stats.Disks = len(seen)
			if err == io.EOF {
				return stats, nil
			}
			return stats, err
		}
		rec := &batch[len(batch)-1]
		seen[diskKey{rec.VM, rec.Disk}] = struct{}{}
		stats.Records++
		if cfg.Progress != nil && stats.Records%cfg.ProgressEvery == 0 {
			cfg.Progress(stats.Records)
		}
		if len(batch) == cfg.BatchSize {
			flush()
		}
	}
}

// replayBatch is one burst in flight from the demultiplexer to a worker.
type replayBatch struct {
	col  *core.Collector
	recs []Record
}

// parallelDisk is the demultiplexer's per-substream state.
type parallelDisk struct {
	col       *core.Collector
	worker    int
	batch     *replayBatch
	lastIssue int64
	haveLast  bool
}

// ReplayParallel replays a trace into one collector per (VM, disk)
// substream across a worker pool — the histograms the online service
// would have built had it watched the same commands live. Substreams are
// independent (a collector's stream-correlated state never crosses
// disks), so fan-out changes nothing but wall-clock time: any Workers
// value yields bit-identical collectors.
func ReplayParallel(src RecordSource, cfg ReplayConfig) (*ReplayResult, error) {
	cfg = cfg.withDefaults()
	var merge *MergeSource
	if cfg.MergeWindow > 0 {
		merge = NewMergeSource(src, cfg.MergeWindow)
		src = merge
	}

	res := &ReplayResult{}
	pool := sync.Pool{New: func() any {
		return &replayBatch{recs: make([]Record, 0, cfg.BatchSize)}
	}}
	chans := make([]chan *replayBatch, cfg.Workers)
	batchCounts := make([]uint64, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		chans[w] = make(chan *replayBatch, cfg.QueueDepth)
		wg.Add(1)
		go func(w int, ch <-chan *replayBatch) {
			defer wg.Done()
			slab := newReqSlab(cfg.BatchSize)
			var n uint64
			for b := range ch {
				slab.replay(b.col, b.recs)
				n++
				b.recs = b.recs[:0]
				b.col = nil
				pool.Put(b)
			}
			batchCounts[w] = n
		}(w, chans[w])
	}

	disks := make(map[diskKey]*parallelDisk)
	dispatch := func(d *parallelDisk) {
		chans[d.worker] <- d.batch
		d.batch = nil
	}
	var rec Record
	var srcErr error
	for {
		if err := src.Next(&rec); err != nil {
			if err != io.EOF {
				srcErr = err
			}
			break
		}
		key := diskKey{rec.VM, rec.Disk}
		d := disks[key]
		if d == nil {
			col := core.NewCollectorWindow(rec.VM, rec.Disk, cfg.Window)
			col.Enable()
			if cfg.Registry != nil {
				cfg.Registry.Register(col)
			}
			d = &parallelDisk{col: col, worker: len(res.cols) % cfg.Workers}
			disks[key] = d
			res.cols = append(res.cols, col)
		}
		if d.haveLast && rec.IssueMicros < d.lastIssue {
			res.Stats.OrderViolations++
		} else {
			d.lastIssue = rec.IssueMicros
			d.haveLast = true
		}
		if d.batch == nil {
			b := pool.Get().(*replayBatch)
			b.col = d.col
			d.batch = b
		}
		d.batch.recs = append(d.batch.recs, rec)
		if len(d.batch.recs) == cfg.BatchSize {
			dispatch(d)
		}
		res.Stats.Records++
		if cfg.Progress != nil && res.Stats.Records%cfg.ProgressEvery == 0 {
			cfg.Progress(res.Stats.Records)
		}
	}
	for _, d := range disks {
		if d.batch != nil && len(d.batch.recs) > 0 {
			dispatch(d)
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	for _, n := range batchCounts {
		res.Stats.Batches += n
	}
	if merge != nil {
		res.Stats.OrderViolations += merge.Violations()
	}
	res.Stats.Disks = len(res.cols)
	if srcErr != nil {
		return res, fmt.Errorf("trace: replay stopped after %d records: %w", res.Stats.Records, srcErr)
	}
	return res, nil
}
