package trace

import (
	"testing"

	"vscsistats/internal/scsi"
)

// Synthesize is the fixture-free trace supply: the same (seed, n) must
// yield byte-identical records anywhere, different seeds different traces,
// and the output must satisfy the RecordSource ordering contract while
// exercising every histogram family.
func TestSynthesizeDeterministic(t *testing.T) {
	a, b := Synthesize(7, 5000), Synthesize(7, 5000)
	compareRecords(t, "same seed", a, b)
	c := Synthesize(8, 5000)
	same := len(a) == len(c)
	for i := 0; same && i < len(a); i++ {
		same = a[i] == c[i]
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestSynthesizeShape(t *testing.T) {
	recs := Synthesize(7, 20000)
	if len(recs) != 20000 {
		t.Fatalf("got %d records", len(recs))
	}
	disks := make(map[diskKey]bool)
	var reads, writes, flushes, errors, deep int
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Fatalf("record %d: Seq %d", i, r.Seq)
		}
		if i > 0 && r.IssueMicros <= recs[i-1].IssueMicros {
			t.Fatalf("record %d: issue times must strictly increase (%d after %d)",
				i, r.IssueMicros, recs[i-1].IssueMicros)
		}
		if r.CompleteMicros < r.IssueMicros {
			t.Fatalf("record %d completes before it issues", i)
		}
		disks[diskKey{r.VM, r.Disk}] = true
		switch {
		case r.Op.IsRead():
			reads++
		case r.Op.IsWrite():
			writes++
		case r.Op == scsi.OpSynchronizeCache10:
			flushes++
		}
		if r.Status != scsi.StatusGood {
			errors++
		}
		if r.Outstanding > 8 {
			deep++
		}
	}
	if len(disks) < 2 {
		t.Errorf("only %d substreams; parallel replay needs several", len(disks))
	}
	if reads == 0 || writes == 0 || flushes == 0 || errors == 0 || deep == 0 {
		t.Errorf("trace must exercise all families: reads=%d writes=%d flushes=%d errors=%d deep=%d",
			reads, writes, flushes, errors, deep)
	}
}
