package trace

import (
	"bufio"

	"vscsistats/internal/scsi"
)

// MSRSource streams the MSR Cambridge block-trace CSV format
// (SNIA IOTTA; Narayanan et al., FAST'08):
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// Timestamp and ResponseTime are Windows filetime ticks (100 ns);
// Offset and Size are bytes. Each line becomes one Record:
// Hostname → VM, DiskNumber → "disk<N>", timestamps rebased to the first
// record and converted to microseconds, Offset/512 → LBA,
// ceil(Size/512) → Blocks, CompleteMicros = issue + ResponseTime.
//
// The MSR corpus does not log queue depth, so Outstanding is
// reconstructed: per disk, a min-heap of completion times is swept at
// each issue, and the commands still in flight at that instant become
// the record's OutstandingAtIssue — the same definition the live vSCSI
// layer uses (other commands issued but not completed).
//
// Malformed lines (headers, truncated tails, locale-formatted numbers,
// over-long hostile lines) are skipped and counted, never fatal: parsing
// a multi-day trace should not abort at one mangled row.
type MSRSource struct {
	sc     *lineScanner
	fields [][]byte
	vms    *interner
	disks  *interner

	inflight map[diskKey]*completionHeap

	base     uint64 // first timestamp, filetime ticks
	haveBase bool
	seq      uint64
	bad      uint64
}

// NewMSRSource streams MSR Cambridge CSV from br.
func NewMSRSource(br *bufio.Reader) *MSRSource {
	return &MSRSource{
		sc:       newLineScanner(br),
		fields:   make([][]byte, 0, csvMaxFields),
		vms:      newInterner(),
		disks:    newInterner(),
		inflight: make(map[diskKey]*completionHeap),
	}
}

// BadLines reports lines skipped as malformed or hostile.
func (s *MSRSource) BadLines() uint64 { return s.bad + s.sc.long }

// Next implements RecordSource.
func (s *MSRSource) Next(rec *Record) error {
	for {
		line, ok, err := s.sc.next()
		if err != nil {
			return err
		}
		if !ok || len(line) == 0 {
			continue // over-long (already counted) or blank
		}
		if s.parseLine(line, rec) {
			return nil
		}
		s.bad++
	}
}

func (s *MSRSource) parseLine(line []byte, rec *Record) bool {
	s.fields = splitComma(line, s.fields)
	if len(s.fields) < 7 || len(s.fields[1]) == 0 {
		return false
	}
	ts, ok := parseScaledU64(s.fields[0], 1) // some exports carry fractions
	if !ok {
		return false
	}
	var op scsi.OpCode
	switch {
	case eqFoldBytes(s.fields[3], "Read"):
		op = scsi.OpRead16
	case eqFoldBytes(s.fields[3], "Write"):
		op = scsi.OpWrite16
	default:
		return false
	}
	offset, ok := parseU64(s.fields[4])
	if !ok {
		return false
	}
	size, ok := parseU64(s.fields[5])
	if !ok {
		return false
	}
	resp, ok := parseScaledU64(s.fields[6], 1)
	if !ok {
		return false
	}
	if !s.haveBase {
		s.base, s.haveBase = ts, true
	}
	if ts < s.base {
		return false // pre-rebase straggler; cannot express a negative time
	}

	issue := int64((ts - s.base) / 10) // 100 ns ticks → µs
	latency := int64(resp / 10)
	vm := s.vms.get(s.fields[1])
	disk := s.disks.getPrefixed("disk", s.fields[2])

	// Sweep completions that precede this issue, then count what is left
	// in flight on this disk.
	key := diskKey{vm, disk}
	h := s.inflight[key]
	if h == nil {
		h = &completionHeap{}
		s.inflight[key] = h
	}
	h.sweep(issue)
	outstanding := h.len()
	if outstanding > 0xffff {
		outstanding = 0xffff
	}
	h.push(issue + latency)

	rec.Seq = s.seq
	s.seq++
	rec.IssueMicros = issue
	rec.CompleteMicros = issue + latency
	rec.VM = vm
	rec.Disk = disk
	rec.Op = op
	rec.LBA = offset / 512
	rec.Blocks = uint32((size + 511) / 512)
	rec.Outstanding = uint16(outstanding)
	rec.Status = scsi.StatusGood
	return true
}

// completionHeap is a min-heap of in-flight completion times (µs), used to
// reconstruct queue depth from formats that only log latency.
type completionHeap struct{ t []int64 }

func (h *completionHeap) len() int { return len(h.t) }

// sweep drops every completion at or before now.
func (h *completionHeap) sweep(now int64) {
	for len(h.t) > 0 && h.t[0] <= now {
		h.popMin()
	}
}

func (h *completionHeap) push(t int64) {
	h.t = append(h.t, t)
	i := len(h.t) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.t[p] <= h.t[i] {
			break
		}
		h.t[p], h.t[i] = h.t[i], h.t[p]
		i = p
	}
}

func (h *completionHeap) popMin() {
	last := len(h.t) - 1
	h.t[0] = h.t[last]
	h.t = h.t[:last]
	n := len(h.t)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.t[l] < h.t[min] {
			min = l
		}
		if r < n && h.t[r] < h.t[min] {
			min = r
		}
		if min == i {
			return
		}
		h.t[i], h.t[min] = h.t[min], h.t[i]
		i = min
	}
}

// eqFoldBytes is ASCII case-insensitive equality without allocating.
func eqFoldBytes(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c, d := b[i], s[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if 'A' <= d && d <= 'Z' {
			d += 'a' - 'A'
		}
		if c != d {
			return false
		}
	}
	return true
}
