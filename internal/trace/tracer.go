package trace

import (
	"vscsistats/internal/scsi"
	"vscsistats/internal/vscsi"
)

// Tracer is a vscsi.Observer that captures completed commands into a
// bounded ring. A bounded buffer keeps always-on tracing at fixed memory
// cost — the O(n) space of a full trace is exactly what the paper's
// histograms avoid, so the tracer must be explicitly sized.
type Tracer struct {
	ring    []Record
	next    int
	total   uint64
	enabled bool

	// Filter, if non-nil, drops records for which it returns false.
	Filter func(Record) bool
}

// NewTracer creates a tracer retaining the most recent capacity records.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		panic("trace: tracer capacity must be positive")
	}
	return &Tracer{ring: make([]Record, 0, capacity)}
}

// Enable and Disable toggle capture.
func (t *Tracer) Enable() { t.enabled = true }

// Disable stops capture without discarding the ring.
func (t *Tracer) Disable() { t.enabled = false }

// Enabled reports whether the tracer is capturing.
func (t *Tracer) Enabled() bool { return t.enabled }

// Total reports the number of records captured over the tracer's lifetime
// (including those that have since been overwritten).
func (t *Tracer) Total() uint64 { return t.total }

var _ vscsi.Observer = (*Tracer)(nil)

// OnIssue implements vscsi.Observer; tracing happens at completion, when
// both timestamps and status are known.
func (t *Tracer) OnIssue(*vscsi.Request) {}

// OnComplete captures the finished command.
func (t *Tracer) OnComplete(r *vscsi.Request) {
	if !t.enabled {
		return
	}
	rec := FromRequest(r)
	if t.Filter != nil && !t.Filter(rec) {
		return
	}
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, rec)
		return
	}
	t.ring[t.next] = rec
	t.next = (t.next + 1) % cap(t.ring)
}

// Records returns the captured records in capture order (oldest first).
func (t *Tracer) Records() []Record {
	out := make([]Record, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Reset discards captured records (the lifetime total is preserved).
func (t *Tracer) Reset() {
	t.ring = t.ring[:0]
	t.next = 0
}

// Common filters.

// OnlyBlockIO keeps reads and writes, dropping emulated control commands.
func OnlyBlockIO(r Record) bool { return r.Op.IsBlockIO() }

// OnlyDisk keeps one virtual disk's commands.
func OnlyDisk(vm, disk string) func(Record) bool {
	return func(r Record) bool { return r.VM == vm && r.Disk == disk }
}

// OnlyErrors keeps failed commands.
func OnlyErrors(r Record) bool { return r.Status != scsi.StatusGood }

// And combines filters conjunctively.
func And(filters ...func(Record) bool) func(Record) bool {
	return func(r Record) bool {
		for _, f := range filters {
			if !f(r) {
				return false
			}
		}
		return true
	}
}
