package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"vscsistats/internal/core"
)

// requireSameSnapshot asserts two snapshots are bin-exact across every
// metric family and class, plus the scalar counters.
func requireSameSnapshot(t *testing.T, label string, want, got *core.Snapshot) {
	t.Helper()
	if (want == nil) != (got == nil) {
		t.Fatalf("%s: nil mismatch: want %v, got %v", label, want == nil, got == nil)
	}
	if want == nil {
		return
	}
	if want.Commands != got.Commands || want.NumReads != got.NumReads ||
		want.NumWrites != got.NumWrites || want.ReadBytes != got.ReadBytes ||
		want.WriteBytes != got.WriteBytes || want.Errors != got.Errors {
		t.Fatalf("%s: counters differ: want %+v, got %+v", label,
			[]int64{want.Commands, want.NumReads, want.NumWrites, want.ReadBytes, want.WriteBytes, want.Errors},
			[]int64{got.Commands, got.NumReads, got.NumWrites, got.ReadBytes, got.WriteBytes, got.Errors})
	}
	for _, m := range core.Metrics() {
		for _, cl := range []core.Class{core.All, core.Reads, core.Writes} {
			hw, hg := want.Histogram(m, cl), got.Histogram(m, cl)
			if (hw == nil) != (hg == nil) {
				t.Fatalf("%s: %s/%s nil mismatch", label, m, cl)
			}
			if hw == nil {
				continue
			}
			if hw.Total != hg.Total {
				t.Errorf("%s: %s/%s totals differ: want %d, got %d", label, m, cl, hw.Total, hg.Total)
				continue
			}
			for i := range hw.Counts {
				if hw.Counts[i] != hg.Counts[i] {
					t.Errorf("%s: %s/%s bucket %d differs: want %d, got %d",
						label, m, cl, i, hw.Counts[i], hg.Counts[i])
				}
			}
		}
	}
}

// legacyPerDisk replays recs the legacy way, one collector per (VM, disk)
// substream in first-seen order — the oracle for ReplayParallel.
func legacyPerDisk(recs []Record) []*core.Collector {
	var cols []*core.Collector
	seen := make(map[diskKey]bool)
	for _, r := range recs {
		k := diskKey{r.VM, r.Disk}
		if seen[k] {
			continue
		}
		seen[k] = true
		col := core.NewCollector(r.VM, r.Disk)
		col.Enable()
		Replay(Filter(recs, OnlyDisk(r.VM, r.Disk)), col)
		cols = append(cols, col)
	}
	return cols
}

// The streaming merge in front of one collector must rebuild exactly the
// histograms the legacy materialize-and-sort replay built — every metric,
// every class, every bucket.
func TestReplayMergedMatchesLegacy(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		recs := Synthesize(seed, 20000)

		legacy := core.NewCollector("v", "d")
		legacy.Enable()
		Replay(recs, legacy)

		col := core.NewCollector("v", "d")
		stats, err := ReplayMerged(NewSliceSource(recs), col, ReplayConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Records != uint64(len(recs)) {
			t.Fatalf("seed %d: replayed %d of %d records", seed, stats.Records, len(recs))
		}
		if stats.OrderViolations != 0 {
			t.Fatalf("seed %d: %d order violations on an ordered capture", seed, stats.OrderViolations)
		}
		requireSameSnapshot(t, "merged", legacy.Snapshot(), col.Snapshot())
	}
}

// A capture arbitrarily permuted still replays bin-exact once the merge
// window covers the displacement: the k-way merge restores global issue
// order just as the legacy sort did.
func TestReplayMergedShuffledInput(t *testing.T) {
	recs := Synthesize(3, 10000)
	legacy := core.NewCollector("v", "d")
	legacy.Enable()
	Replay(recs, legacy)

	shuffled := append([]Record(nil), recs...)
	rand.New(rand.NewSource(99)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})

	col := core.NewCollector("v", "d")
	stats, err := ReplayMerged(NewSliceSource(shuffled), col, ReplayConfig{MergeWindow: len(shuffled) + 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.OrderViolations != 0 {
		t.Fatalf("%d violations with a full window", stats.OrderViolations)
	}
	requireSameSnapshot(t, "shuffled", legacy.Snapshot(), col.Snapshot())
}

// The parallel engine must be bin-exact against the legacy replay of each
// substream — and give bit-identical results at every worker count, with
// the per-VM and cluster rollups matching the aggregated legacy disks.
func TestReplayParallelMatchesLegacyAllWorkerCounts(t *testing.T) {
	recs := Synthesize(11, 20000)
	oracle := legacyPerDisk(recs)
	oracleSnaps := make([]*core.Snapshot, len(oracle))
	for i, c := range oracle {
		oracleSnaps[i] = c.Snapshot()
	}
	wantMerged := core.Aggregate("*", "*", oracleSnaps...)

	for workers := 1; workers <= 8; workers++ {
		res, err := ReplayParallel(NewSliceSource(recs), ReplayConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Records != uint64(len(recs)) {
			t.Fatalf("workers=%d: replayed %d of %d", workers, res.Stats.Records, len(recs))
		}
		if res.Stats.OrderViolations != 0 {
			t.Fatalf("workers=%d: %d order violations on an ordered capture", workers, res.Stats.OrderViolations)
		}
		cols := res.Collectors()
		if len(cols) != len(oracle) || res.Stats.Disks != len(oracle) {
			t.Fatalf("workers=%d: %d collectors, oracle has %d", workers, len(cols), len(oracle))
		}
		for i := range cols {
			if cols[i].VM() != oracle[i].VM() || cols[i].Disk() != oracle[i].Disk() {
				t.Fatalf("workers=%d: collector %d is %s/%s, oracle %s/%s", workers, i,
					cols[i].VM(), cols[i].Disk(), oracle[i].VM(), oracle[i].Disk())
			}
			requireSameSnapshot(t, cols[i].VM()+"/"+cols[i].Disk(), oracleSnaps[i], cols[i].Snapshot())
		}
		requireSameSnapshot(t, "cluster rollup", wantMerged, res.Merged())
		requireSameSnapshot(t, "vm rollup", aggregateVM(oracle, recs[0].VM), res.VMSnapshot(recs[0].VM))
	}
}

func aggregateVM(cols []*core.Collector, vm string) *core.Snapshot {
	var snaps []*core.Snapshot
	for _, c := range cols {
		if c.VM() == vm {
			snaps = append(snaps, c.Snapshot())
		}
	}
	return core.Aggregate(vm, "*", snaps...)
}

// ReplayParallel registers its collectors so a live endpoint can scrape a
// replay in flight.
func TestReplayParallelRegistersCollectors(t *testing.T) {
	reg := core.NewRegistry()
	res, err := ReplayParallel(NewSliceSource(Synthesize(5, 2000)), ReplayConfig{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(reg.List()); got != res.Stats.Disks {
		t.Fatalf("registry holds %d collectors, want %d", got, res.Stats.Disks)
	}
}

// Out-of-order records past the lookahead are counted, not dropped.
func TestReplayOrderViolationsCounted(t *testing.T) {
	recs := []Record{
		{Seq: 0, IssueMicros: 100, CompleteMicros: 150, VM: "v", Disk: "d", Op: 0x88, Blocks: 8},
		{Seq: 1, IssueMicros: 50, CompleteMicros: 90, VM: "v", Disk: "d", Op: 0x88, Blocks: 8},
	}
	res, err := ReplayParallel(NewSliceSource(recs), ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.OrderViolations != 1 {
		t.Fatalf("OrderViolations = %d, want 1", res.Stats.OrderViolations)
	}
	if res.Stats.Records != 2 {
		t.Fatalf("Records = %d, want 2 (violations must not drop records)", res.Stats.Records)
	}
}

// Progress fires on the configured cadence with running counts.
func TestReplayProgressCallback(t *testing.T) {
	var calls []uint64
	_, err := ReplayParallel(NewSliceSource(Synthesize(2, 5000)), ReplayConfig{
		Progress:      func(n uint64) { calls = append(calls, n) },
		ProgressEvery: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 5 || calls[0] != 1000 || calls[4] != 5000 {
		t.Fatalf("progress calls = %v", calls)
	}
}

// A mid-stream source error surfaces, with the prefix replayed and stats
// reported.
func TestReplayPartialOnSourceError(t *testing.T) {
	recs := Synthesize(4, 1000)
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	for _, r := range recs {
		if err := sw.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()/2]

	src, _, err := Open(bytes.NewReader(truncated), FormatStream)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReplayParallel(src, ReplayConfig{})
	if err == nil {
		t.Fatal("truncated stream replayed without error")
	}
	if res.Stats.Records == 0 || res.Stats.Records >= uint64(len(recs)) {
		t.Fatalf("Records = %d, want a strict prefix of %d", res.Stats.Records, len(recs))
	}

	col := core.NewCollector("*", "*")
	if _, err := ReplayMerged(NewSliceSource(nil), col, ReplayConfig{}); err != nil {
		t.Fatalf("empty source: %v", err)
	}
}

// Steady-state replay must not allocate per record: slabs, batches and
// merge entries are all reused, so allocations stay O(disks + window),
// orders of magnitude below O(records).
func TestReplayAllocsBounded(t *testing.T) {
	recs := Synthesize(8, 100000)
	allocs := testing.AllocsPerRun(1, func() {
		col := core.NewCollector("v", "d")
		if _, err := ReplayMerged(NewSliceSource(recs), col, ReplayConfig{}); err != nil {
			t.Fatal(err)
		}
	})
	// ~100 structural allocations observed; 5000 is two orders of
	// magnitude below one-per-record.
	if allocs > 5000 {
		t.Fatalf("ReplayMerged: %v allocs for 100k records", allocs)
	}
}

// The merge source is itself a RecordSource: chaining it re-orders and
// then streams records through io.EOF semantics.
func TestMergeSourceSmallWindowViolations(t *testing.T) {
	// Displacement of 3 with window 1: the late record is emitted out of
	// order and counted.
	recs := []Record{
		{IssueMicros: 40, VM: "v", Disk: "a"},
		{IssueMicros: 50, VM: "v", Disk: "a"},
		{IssueMicros: 60, VM: "v", Disk: "a"},
		{IssueMicros: 10, VM: "v", Disk: "b"},
	}
	m := NewMergeSource(NewSliceSource(recs), 1)
	var got []int64
	var rec Record
	for {
		if err := m.Next(&rec); err != nil {
			if err != io.EOF {
				t.Fatal(err)
			}
			break
		}
		got = append(got, rec.IssueMicros)
	}
	if len(got) != 4 {
		t.Fatalf("merged %d records, want 4", len(got))
	}
	if m.Violations() == 0 {
		t.Error("displacement beyond the window must count as a violation")
	}
}
