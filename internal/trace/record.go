// Package trace implements the paper's virtual SCSI command tracing
// framework: "More thorough analysis may still require an I/O trace so we
// provide a simple virtual SCSI command tracing framework. Since our
// instrumentation is available at the hypervisor, we are able to collect
// command traces for arbitrary, unmodified guest OSes and applications."
//
// Records use a compact fixed-size binary encoding with an interned string
// table for VM and disk names; traces round-trip through io.Writer/Reader
// and export to CSV for offline tooling.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"

	"vscsistats/internal/scsi"
	"vscsistats/internal/vscsi"
)

// Record is one completed virtual SCSI command.
type Record struct {
	// Seq is the per-disk issue sequence number.
	Seq uint64
	// IssueMicros and CompleteMicros are virtual timestamps.
	IssueMicros    int64
	CompleteMicros int64
	// VM and Disk identify the virtual disk.
	VM, Disk string
	// Op, LBA and Blocks describe the command.
	Op     scsi.OpCode
	LBA    uint64
	Blocks uint32
	// Outstanding is the queue depth observed at issue.
	Outstanding uint16
	// Status is the completion status.
	Status scsi.Status
}

// FromRequest converts a completed vSCSI request into a Record.
func FromRequest(r *vscsi.Request) Record {
	oio := r.OutstandingAtIssue
	if oio > 0xFFFF {
		oio = 0xFFFF
	}
	return Record{
		Seq:            r.ID,
		IssueMicros:    r.IssueTime.Micros(),
		CompleteMicros: r.CompleteTime.Micros(),
		VM:             r.VM,
		Disk:           r.Disk,
		Op:             r.Cmd.Op,
		LBA:            r.Cmd.LBA,
		Blocks:         r.Cmd.Blocks,
		Outstanding:    uint16(oio),
		Status:         r.Status,
	}
}

// LatencyMicros is the issue-to-completion time.
func (r Record) LatencyMicros() int64 { return r.CompleteMicros - r.IssueMicros }

// LastLBA is the final logical block touched.
func (r Record) LastLBA() uint64 {
	if r.Blocks == 0 {
		return r.LBA
	}
	return r.LBA + uint64(r.Blocks) - 1
}

// Bytes is the transfer size in bytes.
func (r Record) Bytes() int64 { return int64(r.Blocks) * scsi.SectorSize }

// String renders the record as one CSV-ish line.
func (r Record) String() string {
	return fmt.Sprintf("%d %s/%s %s t=%dus lat=%dus oio=%d %s",
		r.Seq, r.VM, r.Disk, scsi.Command{Op: r.Op, LBA: r.LBA, Blocks: r.Blocks},
		r.IssueMicros, r.LatencyMicros(), r.Outstanding, r.Status)
}

// Binary format:
//
//	magic "VSCT" | u16 version | u16 stringCount | strings (u16 len + bytes)
//	u64 recordCount | records (recordSize bytes each, little endian)
const (
	magic      = "VSCT"
	version    = 1
	recordSize = 44
)

// Errors returned by the codec.
var (
	ErrBadMagic   = errors.New("trace: bad magic (not a vSCSI trace)")
	ErrBadVersion = errors.New("trace: unsupported version")
	ErrCorrupt    = errors.New("trace: corrupt stream")
)

// Write serializes records to w.
func Write(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	strs := []string{}
	idx := map[string]uint16{}
	intern := func(s string) (uint16, error) {
		if i, ok := idx[s]; ok {
			return i, nil
		}
		if len(strs) > 0xFFFF {
			return 0, fmt.Errorf("trace: too many distinct names")
		}
		i := uint16(len(strs))
		idx[s] = i
		strs = append(strs, s)
		return i, nil
	}
	type interned struct{ vm, disk uint16 }
	ids := make([]interned, len(records))
	for i, r := range records {
		vm, err := intern(r.VM)
		if err != nil {
			return err
		}
		disk, err := intern(r.Disk)
		if err != nil {
			return err
		}
		ids[i] = interned{vm, disk}
	}

	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var scratch [recordSize]byte
	binary.LittleEndian.PutUint16(scratch[:2], version)
	binary.LittleEndian.PutUint16(scratch[2:4], uint16(len(strs)))
	if _, err := bw.Write(scratch[:4]); err != nil {
		return err
	}
	for _, s := range strs {
		if len(s) > 0xFFFF {
			return fmt.Errorf("trace: name too long")
		}
		binary.LittleEndian.PutUint16(scratch[:2], uint16(len(s)))
		if _, err := bw.Write(scratch[:2]); err != nil {
			return err
		}
		if _, err := bw.WriteString(s); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint64(scratch[:8], uint64(len(records)))
	if _, err := bw.Write(scratch[:8]); err != nil {
		return err
	}
	for i, r := range records {
		b := scratch[:]
		binary.LittleEndian.PutUint64(b[0:8], r.Seq)
		binary.LittleEndian.PutUint64(b[8:16], uint64(r.IssueMicros))
		binary.LittleEndian.PutUint64(b[16:24], uint64(r.CompleteMicros))
		binary.LittleEndian.PutUint64(b[24:32], r.LBA)
		binary.LittleEndian.PutUint32(b[32:36], r.Blocks)
		binary.LittleEndian.PutUint16(b[36:38], ids[i].vm)
		binary.LittleEndian.PutUint16(b[38:40], ids[i].disk)
		b[40] = byte(r.Op)
		b[41] = byte(r.Status)
		binary.LittleEndian.PutUint16(b[42:44], r.Outstanding)
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 8)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if string(head[:4]) != magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(head[4:6]); v != version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	nStrs := int(binary.LittleEndian.Uint16(head[6:8]))
	strs := make([]string, nStrs)
	for i := range strs {
		if _, err := io.ReadFull(br, head[:2]); err != nil {
			return nil, fmt.Errorf("%w: string table: %v", ErrCorrupt, err)
		}
		buf := make([]byte, binary.LittleEndian.Uint16(head[:2]))
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("%w: string table: %v", ErrCorrupt, err)
		}
		strs[i] = string(buf)
	}
	if _, err := io.ReadFull(br, head[:8]); err != nil {
		return nil, fmt.Errorf("%w: record count: %v", ErrCorrupt, err)
	}
	count := binary.LittleEndian.Uint64(head[:8])
	const maxRecords = 1 << 30
	if count > maxRecords {
		return nil, fmt.Errorf("%w: absurd record count %d", ErrCorrupt, count)
	}
	records := make([]Record, 0, count)
	buf := make([]byte, recordSize)
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrCorrupt, i, err)
		}
		vmIdx := binary.LittleEndian.Uint16(buf[36:38])
		diskIdx := binary.LittleEndian.Uint16(buf[38:40])
		if int(vmIdx) >= nStrs || int(diskIdx) >= nStrs {
			return nil, fmt.Errorf("%w: record %d references missing name", ErrCorrupt, i)
		}
		records = append(records, Record{
			Seq:            binary.LittleEndian.Uint64(buf[0:8]),
			IssueMicros:    int64(binary.LittleEndian.Uint64(buf[8:16])),
			CompleteMicros: int64(binary.LittleEndian.Uint64(buf[16:24])),
			LBA:            binary.LittleEndian.Uint64(buf[24:32]),
			Blocks:         binary.LittleEndian.Uint32(buf[32:36]),
			VM:             strs[vmIdx],
			Disk:           strs[diskIdx],
			Op:             scsi.OpCode(buf[40]),
			Status:         scsi.Status(buf[41]),
			Outstanding:    binary.LittleEndian.Uint16(buf[42:44]),
		})
	}
	return records, nil
}

// WriteCSV exports records as CSV with a header row.
func WriteCSV(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("seq,vm,disk,op,lba,blocks,issue_us,complete_us,latency_us,outstanding,status\n"); err != nil {
		return err
	}
	for _, r := range records {
		op := strings.ReplaceAll(r.Op.String(), ",", ";")
		if _, err := fmt.Fprintf(bw, "%d,%s,%s,%s,%d,%d,%d,%d,%d,%d,%d\n",
			r.Seq, r.VM, r.Disk, op, r.LBA, r.Blocks,
			r.IssueMicros, r.CompleteMicros, r.LatencyMicros(),
			r.Outstanding, byte(r.Status)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
