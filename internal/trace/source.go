package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"vscsistats/internal/scsi"
)

// RecordSource is a streaming supplier of trace records: Next fills *rec
// and returns nil, or returns io.EOF when the trace ends. The contract is
// built for multi-gigabyte traces: a source holds O(1) state (a read
// buffer, an interned name table), never the trace, and a well-behaved
// implementation allocates nothing per record after warm-up — names are
// interned once per distinct (VM, disk) and every numeric field is decoded
// in place. The replay engine (ReplayParallel, ReplayMerged) and the
// conversion tooling consume any RecordSource interchangeably.
//
// Ordering contract: records must be issue-ordered within each (VM, disk)
// substream. Capture is per-disk sequential, public block traces are
// timestamp-sorted, and Synthesize emits in global issue order, so every
// shipped source satisfies this; sources that cannot (a completion-time
// capture replayed raw) are repaired by NewMergeSource.
type RecordSource interface {
	Next(rec *Record) error
}

// SliceSource adapts an in-memory []Record to RecordSource.
type SliceSource struct {
	recs []Record
	pos  int
}

// NewSliceSource returns a source over recs (not copied).
func NewSliceSource(recs []Record) *SliceSource { return &SliceSource{recs: recs} }

// Next implements RecordSource.
func (s *SliceSource) Next(rec *Record) error {
	if s.pos >= len(s.recs) {
		return io.EOF
	}
	*rec = s.recs[s.pos]
	s.pos++
	return nil
}

// Format identifies a trace encoding.
type Format int

// The supported trace encodings.
const (
	// FormatUnknown asks Open to sniff the encoding.
	FormatUnknown Format = iota
	// FormatNative is the at-rest binary format of Write/Read ("VSCT").
	FormatNative
	// FormatStream is the self-describing frame format of StreamWriter.
	FormatStream
	// FormatMSR is the MSR Cambridge block-trace CSV
	// (Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime).
	FormatMSR
	// FormatAlibaba is the Alibaba cloud block-storage trace CSV
	// (device_id,opcode,offset,length,timestamp).
	FormatAlibaba
)

// String names the format as accepted by ParseFormat.
func (f Format) String() string {
	switch f {
	case FormatNative:
		return "native"
	case FormatStream:
		return "stream"
	case FormatMSR:
		return "msr"
	case FormatAlibaba:
		return "alibaba"
	default:
		return "auto"
	}
}

// ParseFormat parses a format name ("auto", "native", "stream", "msr",
// "alibaba").
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "", "auto":
		return FormatUnknown, nil
	case "native", "vsct":
		return FormatNative, nil
	case "stream":
		return FormatStream, nil
	case "msr", "msrc", "msr-cambridge":
		return FormatMSR, nil
	case "alibaba", "ali":
		return FormatAlibaba, nil
	default:
		return FormatUnknown, fmt.Errorf("trace: unknown format %q (want native, stream, msr or alibaba)", s)
	}
}

// Detect sniffs the trace format from the reader's first bytes without
// consuming them. CSV detection is a heuristic over the first line (field
// count plus the op column); the binary formats are exact.
func Detect(br *bufio.Reader) (Format, error) {
	peek, err := br.Peek(512)
	if len(peek) == 0 {
		if err == io.EOF {
			return FormatUnknown, io.EOF
		}
		return FormatUnknown, err
	}
	if len(peek) >= 4 && string(peek[:4]) == magic {
		return FormatNative, nil
	}
	if f, ok := sniffCSV(peek); ok {
		return f, nil
	}
	if peek[0] == 'S' || peek[0] == 'R' {
		return FormatStream, nil
	}
	return FormatUnknown, fmt.Errorf("trace: unrecognized trace format (pass -format explicitly)")
}

// sniffCSV inspects the first line: printable, comma-separated, and shaped
// like one of the public CSV dialects (or its header row).
func sniffCSV(peek []byte) (Format, bool) {
	line := peek
	if i := bytes.IndexByte(peek, '\n'); i >= 0 {
		line = peek[:i]
	}
	line = bytes.TrimSuffix(line, []byte{'\r'})
	for _, b := range line {
		if b < 0x20 || b > 0x7e {
			return FormatUnknown, false
		}
	}
	fields := bytes.Split(line, []byte{','})
	switch {
	case len(fields) >= 7:
		op := string(bytes.TrimSpace(fields[3]))
		if eqFold(op, "Read") || eqFold(op, "Write") || eqFold(op, "Type") {
			return FormatMSR, true
		}
	case len(fields) == 5:
		op := string(bytes.TrimSpace(fields[1]))
		if eqFold(op, "R") || eqFold(op, "W") || eqFold(op, "opcode") {
			return FormatAlibaba, true
		}
	}
	return FormatUnknown, false
}

func eqFold(a, b string) bool { return strings.EqualFold(a, b) }

// Open wraps r as a streaming RecordSource of the given format;
// FormatUnknown sniffs it. The resolved format is returned alongside.
func Open(r io.Reader, f Format) (RecordSource, Format, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	if f == FormatUnknown {
		var err error
		f, err = Detect(br)
		if err == io.EOF { // empty input: a valid, empty stream
			return NewStreamSource(br), FormatStream, nil
		}
		if err != nil {
			return nil, FormatUnknown, err
		}
	}
	switch f {
	case FormatNative:
		return NewNativeSource(br), FormatNative, nil
	case FormatStream:
		return NewStreamSource(br), FormatStream, nil
	case FormatMSR:
		return NewMSRSource(br), FormatMSR, nil
	case FormatAlibaba:
		return NewAlibabaSource(br), FormatAlibaba, nil
	default:
		return nil, f, fmt.Errorf("trace: unsupported format %v", f)
	}
}

// ReadAll drains a source into memory — the bridge to the offline analyses
// (exact statistics, stream detection) that genuinely need the whole trace.
func ReadAll(src RecordSource) ([]Record, error) {
	var out []Record
	var rec Record
	for {
		if err := src.Next(&rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, rec)
	}
}

// NativeSource streams the at-rest format of Write/Read: the header and
// interned string table are decoded up front (bounded by the format's
// uint16 name count), then records decode one fixed-size frame at a time.
type NativeSource struct {
	br      *bufio.Reader
	strs    []string
	remain  uint64
	started bool
	err     error
	buf     [recordSize]byte
}

// NewNativeSource streams a trace written by Write.
func NewNativeSource(r io.Reader) *NativeSource {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	return &NativeSource{br: br}
}

func (s *NativeSource) start() error {
	s.started = true
	head := s.buf[:8]
	if _, err := io.ReadFull(s.br, head); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if string(head[:4]) != magic {
		return ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(head[4:6]); v != version {
		return fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	nStrs := int(binary.LittleEndian.Uint16(head[6:8]))
	s.strs = make([]string, nStrs)
	for i := range s.strs {
		if _, err := io.ReadFull(s.br, head[:2]); err != nil {
			return fmt.Errorf("%w: string table: %v", ErrCorrupt, err)
		}
		buf := make([]byte, binary.LittleEndian.Uint16(head[:2]))
		if _, err := io.ReadFull(s.br, buf); err != nil {
			return fmt.Errorf("%w: string table: %v", ErrCorrupt, err)
		}
		s.strs[i] = string(buf)
	}
	if _, err := io.ReadFull(s.br, head[:8]); err != nil {
		return fmt.Errorf("%w: record count: %v", ErrCorrupt, err)
	}
	s.remain = binary.LittleEndian.Uint64(head[:8])
	const maxRecords = 1 << 40 // a sanity bound, not a memory bound: records stream
	if s.remain > maxRecords {
		return fmt.Errorf("%w: absurd record count %d", ErrCorrupt, s.remain)
	}
	return nil
}

// Next implements RecordSource.
func (s *NativeSource) Next(rec *Record) error {
	if s.err != nil {
		return s.err
	}
	if !s.started {
		if err := s.start(); err != nil {
			s.err = err
			return err
		}
	}
	if s.remain == 0 {
		s.err = io.EOF
		return io.EOF
	}
	if _, err := io.ReadFull(s.br, s.buf[:]); err != nil {
		s.err = fmt.Errorf("%w: record: %v", ErrCorrupt, err)
		return s.err
	}
	s.remain--
	vmIdx := binary.LittleEndian.Uint16(s.buf[36:38])
	diskIdx := binary.LittleEndian.Uint16(s.buf[38:40])
	if int(vmIdx) >= len(s.strs) || int(diskIdx) >= len(s.strs) {
		s.err = fmt.Errorf("%w: record references missing name", ErrCorrupt)
		return s.err
	}
	decodeRecord(s.buf[:], s.strs[vmIdx], s.strs[diskIdx], rec)
	return nil
}

// StreamSource streams the self-describing frame format of StreamWriter.
type StreamSource struct {
	br   *bufio.Reader
	strs map[uint16]string
	err  error
	buf  [recordSize]byte
}

// NewStreamSource streams frames written by StreamWriter.
func NewStreamSource(r io.Reader) *StreamSource {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	return &StreamSource{br: br, strs: make(map[uint16]string)}
}

// Next implements RecordSource.
func (s *StreamSource) Next(rec *Record) error {
	if s.err != nil {
		return s.err
	}
	for {
		tag, err := s.br.ReadByte()
		if err == io.EOF {
			s.err = io.EOF
			return io.EOF
		}
		if err != nil {
			s.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
			return s.err
		}
		switch tag {
		case 'S':
			if _, err := io.ReadFull(s.br, s.buf[:4]); err != nil {
				s.err = fmt.Errorf("%w: string frame: %v", ErrCorrupt, err)
				return s.err
			}
			id := binary.LittleEndian.Uint16(s.buf[0:2])
			name := make([]byte, binary.LittleEndian.Uint16(s.buf[2:4]))
			if _, err := io.ReadFull(s.br, name); err != nil {
				s.err = fmt.Errorf("%w: string frame: %v", ErrCorrupt, err)
				return s.err
			}
			s.strs[id] = string(name)
		case 'R':
			if _, err := io.ReadFull(s.br, s.buf[:]); err != nil {
				s.err = fmt.Errorf("%w: record frame: %v", ErrCorrupt, err)
				return s.err
			}
			vm, okVM := s.strs[binary.LittleEndian.Uint16(s.buf[36:38])]
			disk, okDisk := s.strs[binary.LittleEndian.Uint16(s.buf[38:40])]
			if !okVM || !okDisk {
				s.err = fmt.Errorf("%w: record references undefined name", ErrCorrupt)
				return s.err
			}
			decodeRecord(s.buf[:], vm, disk, rec)
			return nil
		default:
			s.err = fmt.Errorf("%w: unknown frame tag %q", ErrCorrupt, tag)
			return s.err
		}
	}
}

// decodeRecord fills rec from one 44-byte record frame plus resolved names.
func decodeRecord(b []byte, vm, disk string, rec *Record) {
	rec.Seq = binary.LittleEndian.Uint64(b[0:8])
	rec.IssueMicros = int64(binary.LittleEndian.Uint64(b[8:16]))
	rec.CompleteMicros = int64(binary.LittleEndian.Uint64(b[16:24]))
	rec.LBA = binary.LittleEndian.Uint64(b[24:32])
	rec.Blocks = binary.LittleEndian.Uint32(b[32:36])
	rec.VM = vm
	rec.Disk = disk
	rec.Op = scsi.OpCode(b[40])
	rec.Status = scsi.Status(b[41])
	rec.Outstanding = binary.LittleEndian.Uint16(b[42:44])
}
