package trace

import (
	"runtime"
	"sync"
	"testing"

	"vscsistats/internal/core"
)

// The replay benchmarks all consume the same synthesized 1M-record trace
// (built once; Synthesize is seed-deterministic, so every machine measures
// the same workload). BenchmarkTraceReplayLegacy1M is the
// materialize-and-sort baseline; BenchmarkTraceReplay1M is the streaming
// engine pinned single-worker (the honest core-for-core comparison —
// cmd/benchfastpath fences it at ≤0.5× legacy ns/op, i.e. ≥2×
// throughput); BenchmarkTraceReplay1MParallel lets the worker pool use
// GOMAXPROCS (run with -cpu 1,4 to see the fan-out).
var bench1M struct {
	once sync.Once
	recs []Record
}

func bench1MRecords() []Record {
	bench1M.once.Do(func() { bench1M.recs = Synthesize(1, 1<<20) })
	return bench1M.recs
}

func BenchmarkTraceReplayLegacy1M(b *testing.B) {
	recs := bench1MRecords()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := core.NewCollector("v", "d")
		col.Enable()
		Replay(recs, col)
	}
}

func BenchmarkTraceReplay1M(b *testing.B) {
	recs := bench1MRecords()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReplayParallel(NewSliceSource(recs), ReplayConfig{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceReplay1MParallel(b *testing.B) {
	recs := bench1MRecords()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReplayParallel(NewSliceSource(recs), ReplayConfig{Workers: runtime.GOMAXPROCS(0)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceReplay1MMerged measures the k-way merge in front of one
// collector — the legacy single-collector semantics at streaming cost.
func BenchmarkTraceReplay1MMerged(b *testing.B) {
	recs := bench1MRecords()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := core.NewCollector("v", "d")
		if _, err := ReplayMerged(NewSliceSource(recs), col, ReplayConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}
