package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"vscsistats/internal/core"
	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

func sampleRecords(n int) []Record {
	out := make([]Record, n)
	for i := range out {
		op := scsi.OpRead10
		if i%3 == 0 {
			op = scsi.OpWrite10
		}
		out[i] = Record{
			Seq:            uint64(i),
			IssueMicros:    int64(i) * 100,
			CompleteMicros: int64(i)*100 + 2000,
			VM:             "vm" + string(rune('A'+i%2)),
			Disk:           "scsi0:0",
			Op:             op,
			LBA:            uint64(i) * 8,
			Blocks:         8,
			Outstanding:    uint16(i % 32),
			Status:         scsi.StatusGood,
		}
	}
	return out
}

func TestWriteReadRoundTrip(t *testing.T) {
	recs := sampleRecords(100)
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("len = %d, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestWriteReadEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not a trace at all")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	if _, err := Read(strings.NewReader("VS")); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short: %v", err)
	}
	// Wrong version.
	var buf bytes.Buffer
	Write(&buf, sampleRecords(1))
	b := buf.Bytes()
	b[4] = 99
	if _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}
	// Truncated records.
	buf.Reset()
	Write(&buf, sampleRecords(10))
	if _, err := Read(bytes.NewReader(buf.Bytes()[:buf.Len()-10])); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated: %v", err)
	}
}

// Property: round trip is the identity for arbitrary record contents.
func TestRoundTripProperty(t *testing.T) {
	f := func(seq uint64, issue, lat int32, lba uint64, blocks uint32, oio uint16, write bool) bool {
		op := scsi.OpRead16
		if write {
			op = scsi.OpWrite16
		}
		rec := Record{
			Seq: seq, IssueMicros: int64(issue), CompleteMicros: int64(issue) + int64(lat),
			VM: "vm", Disk: "d", Op: op, LBA: lba, Blocks: blocks,
			Outstanding: oio, Status: scsi.StatusGood,
		}
		var buf bytes.Buffer
		if err := Write(&buf, []Record{rec}); err != nil {
			return false
		}
		got, err := Read(&buf)
		return err == nil && len(got) == 1 && got[0] == rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleRecords(2)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines: %v", lines)
	}
	if !strings.HasPrefix(lines[0], "seq,vm,disk,op") {
		t.Errorf("header: %s", lines[0])
	}
	if !strings.Contains(lines[1], "WRITE(10)") || !strings.Contains(lines[1], ",2000,") {
		t.Errorf("row: %s", lines[1])
	}
}

func TestTracerRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(3)
	tr.Enable()
	eng := simclock.NewEngine()
	backend := vscsi.BackendFunc(func(r *vscsi.Request, done func(scsi.Status, scsi.Sense)) {
		done(scsi.StatusGood, scsi.Sense{})
	})
	d := vscsi.NewDisk(eng, backend, vscsi.DiskConfig{VM: "v", Name: "d", CapacitySectors: 1 << 20})
	d.AddObserver(tr)
	for i := 0; i < 5; i++ {
		d.Issue(scsi.Read(uint64(i*8), 8), nil)
	}
	eng.Run()
	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("ring holds %d", len(recs))
	}
	if recs[0].Seq != 2 || recs[2].Seq != 4 {
		t.Errorf("ring order: %v", recs)
	}
	if tr.Total() != 5 {
		t.Errorf("Total = %d", tr.Total())
	}
	tr.Reset()
	if len(tr.Records()) != 0 || tr.Total() != 5 {
		t.Error("Reset should clear ring but keep lifetime total")
	}
}

func TestTracerDisabledAndFiltered(t *testing.T) {
	tr := NewTracer(10)
	eng := simclock.NewEngine()
	backend := vscsi.BackendFunc(func(r *vscsi.Request, done func(scsi.Status, scsi.Sense)) {
		done(scsi.StatusGood, scsi.Sense{})
	})
	d := vscsi.NewDisk(eng, backend, vscsi.DiskConfig{VM: "v", Name: "d", CapacitySectors: 1 << 20})
	d.AddObserver(tr)
	d.Issue(scsi.Read(0, 8), nil) // disabled: dropped
	tr.Enable()
	tr.Filter = OnlyBlockIO
	d.Issue(scsi.Command{Op: scsi.OpTestUnitReady}, nil) // filtered
	d.Issue(scsi.Write(8, 8), nil)
	eng.Run()
	recs := tr.Records()
	if len(recs) != 1 || !recs[0].Op.IsWrite() {
		t.Errorf("records: %v", recs)
	}
}

func TestTracerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 should panic")
		}
	}()
	NewTracer(0)
}

func TestFilters(t *testing.T) {
	recs := []Record{
		{VM: "a", Disk: "d0", Op: scsi.OpRead10, Status: scsi.StatusGood},
		{VM: "b", Disk: "d0", Op: scsi.OpInquiry, Status: scsi.StatusGood},
		{VM: "a", Disk: "d1", Op: scsi.OpWrite10, Status: scsi.StatusCheckCondition},
	}
	if got := Filter(recs, OnlyBlockIO); len(got) != 2 {
		t.Errorf("OnlyBlockIO: %v", got)
	}
	if got := Filter(recs, OnlyDisk("a", "d1")); len(got) != 1 || got[0].Op != scsi.OpWrite10 {
		t.Errorf("OnlyDisk: %v", got)
	}
	if got := Filter(recs, OnlyErrors); len(got) != 1 {
		t.Errorf("OnlyErrors: %v", got)
	}
	if got := Filter(recs, And(OnlyBlockIO, OnlyErrors)); len(got) != 1 {
		t.Errorf("And: %v", got)
	}
}

func TestSortByIssue(t *testing.T) {
	recs := []Record{{IssueMicros: 30}, {IssueMicros: 10}, {IssueMicros: 20}}
	SortByIssue(recs)
	if recs[0].IssueMicros != 10 || recs[2].IssueMicros != 30 {
		t.Errorf("sorted: %v", recs)
	}
}

// Replay must rebuild exactly the histograms the online collector built.
func TestReplayMatchesOnline(t *testing.T) {
	eng := simclock.NewEngine()
	backend := vscsi.BackendFunc(func(r *vscsi.Request, done func(scsi.Status, scsi.Sense)) {
		eng.After(simclock.Time(1+r.Cmd.LBA%5)*simclock.Millisecond, func(simclock.Time) {
			done(scsi.StatusGood, scsi.Sense{})
		})
	})
	d := vscsi.NewDisk(eng, backend, vscsi.DiskConfig{VM: "v", Name: "d", CapacitySectors: 1 << 24})
	online := core.NewCollector("v", "d")
	online.Enable()
	d.AddObserver(online)
	tr := NewTracer(10000)
	tr.Enable()
	d.AddObserver(tr)

	rng := simclock.NewRand(5)
	for i := 0; i < 500; i++ {
		at := simclock.Time(i) * 500 * simclock.Microsecond
		lba := uint64(rng.Int63n(1 << 20))
		write := rng.Intn(2) == 0
		eng.At(at, func(simclock.Time) {
			if write {
				d.Issue(scsi.Write(lba, 16), nil)
			} else {
				d.Issue(scsi.Read(lba, 8), nil)
			}
		})
	}
	eng.Run()

	replayed := core.NewCollector("v", "d")
	replayed.Enable()
	Replay(tr.Records(), replayed)

	so, sr := online.Snapshot(), replayed.Snapshot()
	if so.Commands != sr.Commands || so.NumReads != sr.NumReads {
		t.Fatalf("counters differ: %d/%d vs %d/%d", so.Commands, so.NumReads, sr.Commands, sr.NumReads)
	}
	for _, m := range core.Metrics() {
		for _, cl := range []core.Class{core.All, core.Reads, core.Writes} {
			ho, hr := so.Histogram(m, cl), sr.Histogram(m, cl)
			if ho.Total != hr.Total {
				t.Errorf("%s/%s totals differ: %d vs %d", m, cl, ho.Total, hr.Total)
				continue
			}
			for i := range ho.Counts {
				if ho.Counts[i] != hr.Counts[i] {
					t.Errorf("%s/%s bin %d: online %d, replay %d", m, cl, i, ho.Counts[i], hr.Counts[i])
					break
				}
			}
		}
	}
}

func TestReplayFromSerializedTrace(t *testing.T) {
	recs := sampleRecords(50)
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	col := core.NewCollector("vmA", "scsi0:0")
	col.Enable()
	Replay(Filter(loaded, OnlyDisk("vmA", "scsi0:0")), col)
	s := col.Snapshot()
	if s.Commands != 25 { // half the records belong to vmA
		t.Errorf("Commands = %d, want 25", s.Commands)
	}
	if s.Latency[core.All].Min != 2000 || s.Latency[core.All].Max != 2000 {
		t.Errorf("latency min/max = %d/%d, want 2000", s.Latency[core.All].Min, s.Latency[core.All].Max)
	}
}

func BenchmarkWrite(b *testing.B) {
	recs := sampleRecords(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, recs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplay(b *testing.B) {
	recs := sampleRecords(10000)
	for i := range recs {
		recs[i].VM, recs[i].Disk = "v", "d"
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		col := core.NewCollector("v", "d")
		col.Enable()
		Replay(recs, col)
	}
}

func TestStreamWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	recs := sampleRecords(200)
	for _, r := range recs {
		if err := sw.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if sw.Count() != 200 {
		t.Errorf("Count = %d", sw.Count())
	}
	got, err := ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestStreamWriterAsObserver(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	eng := simclock.NewEngine()
	backend := vscsi.BackendFunc(func(r *vscsi.Request, done func(scsi.Status, scsi.Sense)) {
		done(scsi.StatusGood, scsi.Sense{})
	})
	d := vscsi.NewDisk(eng, backend, vscsi.DiskConfig{VM: "v", Name: "d", CapacitySectors: 1 << 20})
	d.AddObserver(sw)
	for i := 0; i < 10; i++ {
		d.Issue(scsi.Read(uint64(i*8), 8), nil)
	}
	eng.Run()
	sw.Close()
	got, err := ReadStream(&buf)
	if err != nil || len(got) != 10 {
		t.Fatalf("got %d records, err %v", len(got), err)
	}
	if got[3].Seq != 3 || got[3].VM != "v" {
		t.Errorf("record: %+v", got[3])
	}
}

func TestReadStreamErrors(t *testing.T) {
	if _, err := ReadStream(strings.NewReader("Xjunk")); !errors.Is(err, ErrCorrupt) {
		t.Errorf("unknown tag: %v", err)
	}
	// Record referencing an undefined string id.
	var buf bytes.Buffer
	buf.WriteByte('R')
	buf.Write(make([]byte, recordSize))
	// id 0 undefined -> corrupt
	if _, err := ReadStream(&buf); !errors.Is(err, ErrCorrupt) {
		t.Errorf("undefined name: %v", err)
	}
	// Truncated string frame.
	buf.Reset()
	buf.WriteByte('S')
	buf.Write([]byte{0, 0})
	if _, err := ReadStream(&buf); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated: %v", err)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n += len(p)
	if f.n > 4096 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestStreamWriterStopsOnError(t *testing.T) {
	sw := NewStreamWriter(&failWriter{})
	rec := sampleRecords(1)[0]
	for i := 0; i < 1000; i++ {
		sw.Append(rec)
	}
	if err := sw.Close(); err == nil {
		t.Fatal("expected write error")
	}
	if sw.Count() == 1000 {
		t.Error("writer should have stopped counting after the error")
	}
	// The error is sticky: further appends of already-interned names must
	// not resurrect the count (bufio happily buffers them, but the stream
	// is truncated — counting them would report phantom records).
	frozen := sw.Count()
	for i := 0; i < 100; i++ {
		if err := sw.Append(rec); err == nil {
			t.Fatal("Append after error must keep returning it")
		}
	}
	if sw.Count() != frozen {
		t.Errorf("Count moved %d -> %d after the first error", frozen, sw.Count())
	}
	if sw.Err() == nil {
		t.Error("Err() must report the write error")
	}
}

// A flush failure at Close must surface through both Close and Err, even
// when every buffered Write succeeded.
func TestStreamWriterCloseSurfacesFlushError(t *testing.T) {
	sw := NewStreamWriter(&failWriter{n: 4096 - 10}) // fails on first flush
	if err := sw.Append(sampleRecords(1)[0]); err != nil {
		t.Fatalf("buffered append: %v", err)
	}
	if err := sw.Close(); err == nil {
		t.Fatal("Close must surface the flush error")
	}
	if sw.Err() == nil {
		t.Error("Err() must keep reporting the flush error after Close")
	}
	if err := sw.Close(); err == nil {
		t.Error("repeated Close must keep returning the error")
	}
}

func BenchmarkStreamWriterAppend(b *testing.B) {
	sw := NewStreamWriter(io.Discard)
	rec := sampleRecords(1)[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Seq = uint64(i)
		if err := sw.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}
