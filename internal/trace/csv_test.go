package trace

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"

	"vscsistats/internal/scsi"
)

const msrSample = `Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
1000000000,web,0,Read,4096,1536,100
1000000050,web,0,Write,0,512,20
1000000100,db,2,Write,1024,1024,50
1000000200,web,0,read,512,1,0
`

func msrRecords(t *testing.T, csv string) (*MSRSource, []Record) {
	t.Helper()
	src := NewMSRSource(bufio.NewReader(strings.NewReader(csv)))
	recs, err := ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	return src, recs
}

func TestMSRSourceConversion(t *testing.T) {
	src, recs := msrRecords(t, msrSample)
	if len(recs) != 4 {
		t.Fatalf("parsed %d records, want 4", len(recs))
	}
	if src.BadLines() != 1 { // the header
		t.Errorf("BadLines = %d, want 1", src.BadLines())
	}

	r := recs[0]
	if r.VM != "web" || r.Disk != "disk0" || r.Op != scsi.OpRead16 {
		t.Errorf("record 0 identity: %+v", r)
	}
	// Timestamps rebase to the first record; filetime ticks are 100 ns.
	if r.IssueMicros != 0 || r.CompleteMicros != 10 {
		t.Errorf("record 0 times: issue %d complete %d, want 0/10", r.IssueMicros, r.CompleteMicros)
	}
	// Offset/512 → LBA, ceil(Size/512) → Blocks.
	if r.LBA != 8 || r.Blocks != 3 {
		t.Errorf("record 0 geometry: LBA %d blocks %d, want 8/3", r.LBA, r.Blocks)
	}
	if r.Outstanding != 0 || r.Status != scsi.StatusGood || r.Seq != 0 {
		t.Errorf("record 0: %+v", r)
	}

	// Record 1 issues at 5 µs while record 0 (completes at 10 µs) is still
	// in flight on the same disk: reconstructed depth 1.
	if recs[1].IssueMicros != 5 || recs[1].Outstanding != 1 || recs[1].Op != scsi.OpWrite16 {
		t.Errorf("record 1: %+v", recs[1])
	}
	// Record 2 is another host: its own disk, depth 0, disk prefix kept.
	if recs[2].VM != "db" || recs[2].Disk != "disk2" || recs[2].Outstanding != 0 {
		t.Errorf("record 2: %+v", recs[2])
	}
	// Record 3 issues at 20 µs, after both web/disk0 completions (10, 7):
	// the sweep empties the heap. Size 1 still rounds up to one block, and
	// lower-case "read" folds.
	if recs[3].Outstanding != 0 || recs[3].Blocks != 1 || recs[3].Op != scsi.OpRead16 {
		t.Errorf("record 3: %+v", recs[3])
	}
	// Per-disk issue order held (the RecordSource contract).
	if !(recs[0].IssueMicros <= recs[1].IssueMicros && recs[1].IssueMicros <= recs[3].IssueMicros) {
		t.Errorf("web/disk0 out of issue order")
	}
}

func TestMSRSourceMalformedLines(t *testing.T) {
	csv := "garbage\n" +
		"1000,host,0,Read,0,512\n" + // six fields
		"1000,host,0,Flush,0,512,10\n" + // unknown op
		"1_000,host,0,Read,0,512,10\n" + // locale separator
		"1000,host,0,Read,0,512,1.5e3\n" + // exponent
		"not,a,number,Read,0,512,10\n" +
		"\r\n" + // blank CRLF line
		"1000,host,0,Read,0,512,10\r\n" + // valid, CRLF
		"900,host,0,Read,0,512,10\n" + // pre-rebase straggler
		"1010,host,0,Write,512,512,1.75\n" // valid, fraction truncates
	src, recs := msrRecords(t, csv)
	if len(recs) != 2 {
		t.Fatalf("parsed %d records, want 2: %+v", len(recs), recs)
	}
	if src.BadLines() != 7 {
		t.Errorf("BadLines = %d, want 7", src.BadLines())
	}
	if recs[1].IssueMicros != 1 || recs[1].CompleteMicros != 1 {
		t.Errorf("fractional response must truncate to ticks: %+v", recs[1])
	}
}

func TestMSRSourceHostileLongLine(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("1000,host,0,Read,0,512,10\n")
	sb.WriteString(strings.Repeat("x", csvMaxLine+4096)) // one hostile line
	sb.WriteString("\n1050,host,0,Write,512,512,10\n")
	src, recs := msrRecords(t, sb.String())
	if len(recs) != 2 {
		t.Fatalf("parsed %d records, want 2 (hostile line must not end the scan)", len(recs))
	}
	if src.BadLines() != 1 {
		t.Errorf("BadLines = %d, want 1", src.BadLines())
	}
}

// Hostnames and disk numbers intern in separate tables, so a hostname "3"
// cannot collide with disk number 3.
func TestMSRSourceInternSeparation(t *testing.T) {
	_, recs := msrRecords(t, "1000,3,3,Read,0,512,10\n")
	if len(recs) != 1 || recs[0].VM != "3" || recs[0].Disk != "disk3" {
		t.Fatalf("records: %+v", recs)
	}
}

const alibabaSample = `device_id,opcode,offset,length,timestamp
64,R,4096,1024,1000000
64,W,0,512,1000010
7,r,512,512,1000005.9
`

func TestAlibabaSourceConversion(t *testing.T) {
	src := NewAlibabaSource(bufio.NewReader(strings.NewReader(alibabaSample)))
	recs, err := ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("parsed %d records, want 3", len(recs))
	}
	if src.BadLines() != 1 {
		t.Errorf("BadLines = %d, want 1", src.BadLines())
	}
	r := recs[0]
	if r.VM != "dev64" || r.Disk != "blk0" || r.Op != scsi.OpRead16 {
		t.Errorf("record 0 identity: %+v", r)
	}
	if r.IssueMicros != 0 || r.CompleteMicros != 0 || r.LBA != 8 || r.Blocks != 2 {
		t.Errorf("record 0: %+v", r)
	}
	if recs[1].IssueMicros != 10 || recs[1].Op != scsi.OpWrite16 || recs[1].Blocks != 1 {
		t.Errorf("record 1: %+v", recs[1])
	}
	// Fractional µs truncate; lower-case opcode folds; distinct device.
	if recs[2].IssueMicros != 5 || recs[2].VM != "dev7" || recs[2].Op != scsi.OpRead16 {
		t.Errorf("record 2: %+v", recs[2])
	}
}

// The parsers and replay compose: a converted public trace replays into
// collectors like any native capture.
func TestMSRReplayEndToEnd(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n")
	ts := uint64(5_000_000)
	for i := 0; i < 5000; i++ {
		host := "web"
		if i%3 == 0 {
			host = "db"
		}
		typ := "Read"
		if i%4 == 0 {
			typ = "Write"
		}
		sb.WriteString(strings.Join([]string{
			uitoa(ts), host, uitoa(uint64(i % 2)), typ,
			uitoa(uint64((i * 7) % 1000 * 4096)), uitoa(uint64(512 << (i % 4))), uitoa(uint64(100 + i%900)),
		}, ","))
		sb.WriteByte('\n')
		ts += uint64(10 + i%50)
	}
	src, f, err := Open(strings.NewReader(sb.String()), FormatUnknown)
	if err != nil || f != FormatMSR {
		t.Fatalf("Open: %v, format %v", err, f)
	}
	res, err := ReplayParallel(src, ReplayConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Records != 5000 || res.Stats.Disks != 4 {
		t.Fatalf("stats: %+v", res.Stats)
	}
	m := res.Merged()
	if m == nil || m.Commands != 5000 || m.NumReads == 0 || m.NumWrites == 0 {
		t.Fatalf("merged rollup: %+v", m)
	}
}

func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// Steady-state CSV parsing must not allocate per record: lines alias the
// read buffer, numbers decode in place, names intern once.
func TestMSRSourceAllocsBounded(t *testing.T) {
	var sb strings.Builder
	ts := uint64(1_000_000)
	for i := 0; i < 50000; i++ {
		sb.WriteString(uitoa(ts))
		sb.WriteString(",host")
		sb.WriteString(uitoa(uint64(i % 4)))
		sb.WriteString(",0,Read,4096,512,100\n")
		ts += 17
	}
	data := []byte(sb.String())
	allocs := testing.AllocsPerRun(1, func() {
		src := NewMSRSource(bufio.NewReader(bytes.NewReader(data)))
		var rec Record
		var n int
		for src.Next(&rec) == nil {
			n++
		}
		if n != 50000 {
			t.Fatalf("parsed %d records", n)
		}
	})
	// Structural allocations only (reader buffer, interner, heaps) — two
	// orders of magnitude below one-per-record.
	if allocs > 500 {
		t.Fatalf("MSR parse: %v allocs for 50k records", allocs)
	}
}

func TestParseU64(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
		ok   bool
	}{
		{"0", 0, true},
		{"18446744073709551615", 1<<64 - 1, true},
		{"18446744073709551616", 0, false}, // overflow
		{"", 0, false},
		{"-1", 0, false},
		{"1_000", 0, false},
		{"1e3", 0, false},
		{"½", 0, false},
		{" 1", 0, false},
		{"123456789012345678901", 0, false}, // 21 digits
	}
	for _, c := range cases {
		got, ok := parseU64([]byte(c.in))
		if got != c.want || ok != c.ok {
			t.Errorf("parseU64(%q) = %d,%v want %d,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestParseScaledU64(t *testing.T) {
	cases := []struct {
		in    string
		scale uint64
		want  uint64
		ok    bool
	}{
		{"1234", 1000, 1234000, true},
		{"1234.5", 1000, 1234500, true},
		{"1234.5678", 1000, 1234567, true}, // truncates below resolution
		{"1234.", 1000, 1234000, true},
		{"7.25", 1, 7, true},
		{"1,5", 1000, 0, false}, // locale comma splits fields, never parses
		{"1.5e3", 1000, 0, false},
		{".5", 1000, 0, false}, // no whole part
		{"1.2.3", 1000, 0, false},
		{"18446744073709551615", 1000, 0, false}, // scaled overflow
	}
	for _, c := range cases {
		got, ok := parseScaledU64([]byte(c.in), c.scale)
		if got != c.want || ok != c.ok {
			t.Errorf("parseScaledU64(%q,%d) = %d,%v want %d,%v", c.in, c.scale, got, ok, c.want, c.ok)
		}
	}
}

func TestLineScannerLongLines(t *testing.T) {
	// A line longer than the bufio buffer but under the cap survives via
	// the overflow buffer.
	long := strings.Repeat("a", 100000)
	sc := newLineScanner(bufio.NewReaderSize(strings.NewReader(long+"\nshort"), 4096))
	line, ok, err := sc.next()
	if err != nil || !ok || len(line) != 100000 {
		t.Fatalf("long line: ok=%v err=%v len=%d", ok, err, len(line))
	}
	line, ok, err = sc.next()
	if err != nil || !ok || string(line) != "short" {
		t.Fatalf("tail line: %q ok=%v err=%v", line, ok, err)
	}
	if _, _, err = sc.next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func fuzzSource(t *testing.T, src RecordSource, bad func() uint64) {
	var rec Record
	n := uint64(0)
	for {
		err := src.Next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("CSV sources skip, never fail: %v", err)
		}
		if rec.VM == "" || rec.Disk == "" {
			t.Fatalf("empty identity: %+v", rec)
		}
		if rec.IssueMicros < 0 || rec.CompleteMicros < rec.IssueMicros {
			t.Fatalf("time order: %+v", rec)
		}
		n++
	}
	_ = n + bad()
}

func FuzzMSRSource(f *testing.F) {
	f.Add([]byte(msrSample))
	f.Add([]byte("1000,host,0,Read,0,512,10\n1000,host,0,Wri"))
	f.Add([]byte("99999999999999999999999999,h,0,Read,18446744073709551615,18446744073709551615,1\n"))
	f.Add([]byte("1000,host,0,Read,1.5,2,5,extra,fields,beyond,the,cap,here\n"))
	f.Add([]byte("1000;host;0;Read;0;512;10\n1000\thost\t0\tRead\t0\t512\t10\n"))
	f.Add([]byte("1000,host,0,Read,0,512,1,5\r\n\r\n,,,,,,\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		src := NewMSRSource(bufio.NewReader(bytes.NewReader(data)))
		fuzzSource(t, src, src.BadLines)
	})
}

func FuzzAlibabaSource(f *testing.F) {
	f.Add([]byte(alibabaSample))
	f.Add([]byte("64,R,4096,1024,10000"))
	f.Add([]byte("64,R,4096,1024\n64,W,0,0,0\n64,X,1,1,1\n"))
	f.Add([]byte("١٢٣,R,0,512,1000\n64,R,0,512,1٫5\n"))
	f.Add([]byte(",,,,\n0,R,,,-5\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		src := NewAlibabaSource(bufio.NewReader(bytes.NewReader(data)))
		fuzzSource(t, src, src.BadLines)
	})
}

func TestDetectFormats(t *testing.T) {
	recs := Synthesize(1, 10)
	var native bytes.Buffer
	if err := Write(&native, recs); err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	sw := NewStreamWriter(&stream)
	for _, r := range recs {
		if err := sw.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
		want Format
	}{
		{"native", native.Bytes(), FormatNative},
		{"stream", stream.Bytes(), FormatStream},
		{"msr", []byte(msrSample), FormatMSR},
		{"msr header only", []byte("Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n"), FormatMSR},
		{"alibaba", []byte(alibabaSample), FormatAlibaba},
	}
	for _, c := range cases {
		src, f, err := Open(bytes.NewReader(c.data), FormatUnknown)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if f != c.want {
			t.Errorf("%s: detected %v, want %v", c.name, f, c.want)
		}
		if _, err := ReadAll(src); err != nil {
			t.Errorf("%s: read after detect: %v", c.name, err)
		}
	}

	if _, _, err := Open(bytes.NewReader([]byte{0x00, 0x01, 0x02}), FormatUnknown); err == nil {
		t.Error("garbage must not sniff to any format")
	}
	src, f, err := Open(bytes.NewReader(nil), FormatUnknown)
	if err != nil || f != FormatStream {
		t.Fatalf("empty input: %v %v", f, err)
	}
	if recs, err := ReadAll(src); err != nil || len(recs) != 0 {
		t.Errorf("empty input reads as empty trace: %v %v", recs, err)
	}
}

// The native and stream sources decode exactly what the writers encoded.
func TestSourcesRoundTrip(t *testing.T) {
	recs := Synthesize(9, 500)

	var native bytes.Buffer
	if err := Write(&native, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(NewNativeSource(bytes.NewReader(native.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	compareRecords(t, "native", recs, got)

	var stream bytes.Buffer
	sw := NewStreamWriter(&stream)
	for _, r := range recs {
		if err := sw.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err = ReadAll(NewStreamSource(bytes.NewReader(stream.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	compareRecords(t, "stream", recs, got)
}

func compareRecords(t *testing.T, label string, want, got []Record) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d records, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: record %d differs:\nwant %+v\ngot  %+v", label, i, want[i], got[i])
		}
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	for _, f := range []Format{FormatNative, FormatStream, FormatMSR, FormatAlibaba} {
		got, err := ParseFormat(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFormat(%q) = %v, %v", f.String(), got, err)
		}
	}
	if f, err := ParseFormat("auto"); err != nil || f != FormatUnknown {
		t.Errorf("auto: %v %v", f, err)
	}
	if _, err := ParseFormat("sqlite"); err == nil {
		t.Error("unknown format name must error")
	}
}
