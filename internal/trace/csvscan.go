package trace

import (
	"bufio"
	"bytes"
	"io"
)

// Zero-allocation CSV plumbing for the public-trace parsers. The scanners
// hand out slices into reused buffers — amortized-zero-alloc in the steady
// state — and every buffer grows progressively with a hard cap, so a
// hostile input (one multi-gigabyte "line", say) costs bounded memory and
// a skipped record, never an OOM. Same discipline as wire.readSized on the
// push protocol.

const (
	// csvInitialLine is the first allocation for an overflowing line.
	csvInitialLine = 4 << 10
	// csvMaxLine caps per-line memory; longer lines are discarded whole.
	csvMaxLine = 1 << 20
	// csvMaxFields caps the fields examined per line. The real formats
	// have ≤ 7; trailing extras are ignored rather than buffered.
	csvMaxFields = 12
	// csvMaxInterned caps the (VM, disk) names remembered per parse, so a
	// trace with a hostile number of distinct hostnames degrades to
	// per-record allocation instead of unbounded table growth.
	csvMaxInterned = 1 << 16
)

// lineScanner yields one line at a time from a bufio.Reader. The returned
// slice aliases either the reader's internal buffer (common case: no copy,
// no allocation) or the scanner's own overflow buffer, and is valid only
// until the next call.
type lineScanner struct {
	br   *bufio.Reader
	over []byte // overflow buffer for lines longer than br's buffer
	line uint64 // 1-based number of the line most recently returned
	long uint64 // lines discarded for exceeding csvMaxLine
}

func newLineScanner(br *bufio.Reader) *lineScanner { return &lineScanner{br: br} }

// next returns the next line without its terminator, or io.EOF. Lines
// longer than csvMaxLine are discarded (counted in long) and the scan
// moves on; ok=false marks such a discard so callers can skip it without
// mistaking it for an empty line.
func (s *lineScanner) next() (line []byte, ok bool, err error) {
	s.line++
	frag, err := s.br.ReadSlice('\n')
	if err == nil || (err == io.EOF && len(frag) > 0) {
		return trimEOL(frag), true, nil
	}
	if err == io.EOF {
		return nil, false, io.EOF
	}
	if err != bufio.ErrBufferFull {
		return nil, false, err
	}
	// Long line: accumulate into the overflow buffer with progressive
	// growth, give up past the cap.
	if s.over == nil {
		s.over = make([]byte, 0, csvInitialLine)
	}
	s.over = append(s.over[:0], frag...)
	for {
		frag, err = s.br.ReadSlice('\n')
		keep := len(s.over) <= csvMaxLine
		if keep {
			room := csvMaxLine + 1 - len(s.over)
			if len(frag) < room {
				room = len(frag)
			}
			s.over = append(s.over, frag[:room]...)
		}
		switch err {
		case bufio.ErrBufferFull:
			continue
		case nil, io.EOF:
			if err == io.EOF && len(frag) == 0 && len(s.over) == 0 {
				return nil, false, io.EOF
			}
			if len(s.over) > csvMaxLine {
				s.long++
				return nil, false, nil
			}
			return trimEOL(s.over), true, nil
		default:
			return nil, false, err
		}
	}
}

func trimEOL(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
	}
	if n := len(b); n > 0 && b[n-1] == '\r' {
		b = b[:n-1]
	}
	return b
}

// splitComma splits line into at most csvMaxFields comma-separated fields,
// reusing the caller's slice. Fields alias the line.
func splitComma(line []byte, fields [][]byte) [][]byte {
	fields = fields[:0]
	for len(fields) < csvMaxFields-1 {
		i := bytes.IndexByte(line, ',')
		if i < 0 {
			break
		}
		fields = append(fields, line[:i])
		line = line[i+1:]
	}
	return append(fields, line)
}

// parseU64 parses an unsigned decimal integer, rejecting empty input,
// non-digits and overflow. Unlike strconv it never allocates (no error
// construction) and accepts nothing but ASCII digits — locale variants
// ("1_000", "1,5", "1e3", "½") are malformed, full stop.
func parseU64(b []byte) (uint64, bool) {
	if len(b) == 0 || len(b) > 20 {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if v > (1<<64-1-d)/10 {
			return 0, false
		}
		v = v*10 + d
	}
	return v, true
}

// parseScaledU64 parses a non-negative decimal that may carry a fractional
// part ("1234", "1234.56") and returns the value in 1/scale units,
// truncated — e.g. scale=1000 turns milliseconds into microseconds
// without a float round-trip. Exponents and locale separators are
// rejected.
func parseScaledU64(b []byte, scale uint64) (uint64, bool) {
	dot := bytes.IndexByte(b, '.')
	if dot < 0 {
		v, ok := parseU64(b)
		if !ok || v > (1<<64-1)/scale {
			return 0, false
		}
		return v * scale, true
	}
	whole, ok := parseU64(b[:dot])
	if !ok || whole > (1<<64-1)/scale {
		return 0, false
	}
	frac := b[dot+1:]
	if len(frac) == 0 {
		return whole * scale, true
	}
	var fv, fs uint64 = 0, 1
	for _, c := range frac {
		if c < '0' || c > '9' {
			return 0, false
		}
		if fs < scale { // further digits are below the target resolution
			fv = fv*10 + uint64(c-'0')
			fs *= 10
		}
	}
	return whole*scale + fv*(scale/fs), true
}

// interner deduplicates the VM/disk name strings a CSV parser mints, so a
// million records over a dozen hostnames cost a dozen allocations. The
// m[string(b)] lookup compiles to a no-alloc map probe. Past csvMaxInterned
// distinct names it stops remembering (hostile-input bound) but still
// returns correct strings.
type interner struct {
	m map[string]string
}

func newInterner() *interner { return &interner{m: make(map[string]string)} }

// get returns the canonical string for b, minting it on first sight.
func (in *interner) get(b []byte) string {
	if s, ok := in.m[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(in.m) < csvMaxInterned {
		in.m[s] = s
	}
	return s
}

// getPrefixed is get for names derived as prefix+b (e.g. disk numbers
// rendered as "disk3"), still keyed on the raw bytes.
func (in *interner) getPrefixed(prefix string, b []byte) string {
	if s, ok := in.m[string(b)]; ok {
		return s
	}
	s := prefix + string(b)
	if len(in.m) < csvMaxInterned {
		in.m[string(b)] = s
	}
	return s
}
