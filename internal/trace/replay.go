package trace

import (
	"sort"

	"vscsistats/internal/core"
	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

// Replay feeds a trace back through a collector, reproducing exactly the
// histograms the online service would have built — the bridge between the
// paper's two modes ("whether calculating online or replaying a trace, the
// resulting CPU cost is O(n)"). Records are replayed per (VM, disk) stream
// in issue order, with completions interleaved by timestamp.
func Replay(records []Record, col *core.Collector) {
	type event struct {
		at    int64
		seq   int // tie-break: original order
		issue bool
		req   *vscsi.Request
	}
	events := make([]event, 0, 2*len(records))
	for i, r := range records {
		req := &vscsi.Request{
			ID:                 r.Seq,
			VM:                 r.VM,
			Disk:               r.Disk,
			Cmd:                scsi.Command{Op: r.Op, LBA: r.LBA, Blocks: r.Blocks},
			IssueTime:          simclock.Time(r.IssueMicros) * simclock.Microsecond,
			CompleteTime:       simclock.Time(r.CompleteMicros) * simclock.Microsecond,
			OutstandingAtIssue: int(r.Outstanding),
			Status:             r.Status,
		}
		events = append(events,
			event{at: r.IssueMicros, seq: i, issue: true, req: req},
			event{at: r.CompleteMicros, seq: i, issue: false, req: req})
	}
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].at != events[b].at {
			return events[a].at < events[b].at
		}
		// Completions before issues at the same instant, as on real
		// hardware where a command must finish before its slot reissues.
		if events[a].issue != events[b].issue {
			return !events[a].issue
		}
		return events[a].seq < events[b].seq
	})
	for _, e := range events {
		if e.issue {
			col.OnIssue(e.req)
		} else {
			col.OnComplete(e.req)
		}
	}
}

// Filter returns the records satisfying keep, preserving order.
func Filter(records []Record, keep func(Record) bool) []Record {
	var out []Record
	for _, r := range records {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

// SortByIssue orders records by issue time (stable).
func SortByIssue(records []Record) {
	sort.SliceStable(records, func(i, j int) bool {
		return records[i].IssueMicros < records[j].IssueMicros
	})
}
