package trace

import (
	"bufio"

	"vscsistats/internal/scsi"
)

// AlibabaSource streams the Alibaba Cloud block-storage trace CSV format
// (Li et al., FAST'23 / arXiv 2203.10766):
//
//	device_id,opcode,offset,length,timestamp
//
// opcode is R or W, offset and length are bytes, timestamp is
// microseconds. Each virtual device becomes its own tenant — device_id →
// VM "dev<id>" with a single disk "blk0" — which is how the corpus is
// meant to be read: one device per cloud virtual disk. Timestamps are
// rebased to the first record. The format carries no response time, so
// CompleteMicros equals IssueMicros (zero latency) and Outstanding is 0 —
// latency-family metrics come out degenerate, while the size, seek,
// read/write-mix and interarrival families are fully populated.
//
// Malformed or hostile lines are skipped and counted, as with MSRSource.
type AlibabaSource struct {
	sc     *lineScanner
	fields [][]byte
	vms    *interner

	base     uint64 // first timestamp, µs
	haveBase bool
	seq      uint64
	bad      uint64
}

// NewAlibabaSource streams Alibaba cloud-trace CSV from br.
func NewAlibabaSource(br *bufio.Reader) *AlibabaSource {
	return &AlibabaSource{
		sc:     newLineScanner(br),
		fields: make([][]byte, 0, csvMaxFields),
		vms:    newInterner(),
	}
}

// BadLines reports lines skipped as malformed or hostile.
func (s *AlibabaSource) BadLines() uint64 { return s.bad + s.sc.long }

// Next implements RecordSource.
func (s *AlibabaSource) Next(rec *Record) error {
	for {
		line, ok, err := s.sc.next()
		if err != nil {
			return err
		}
		if !ok || len(line) == 0 {
			continue
		}
		if s.parseLine(line, rec) {
			return nil
		}
		s.bad++
	}
}

func (s *AlibabaSource) parseLine(line []byte, rec *Record) bool {
	s.fields = splitComma(line, s.fields)
	if len(s.fields) < 5 || len(s.fields[0]) == 0 {
		return false
	}
	var op scsi.OpCode
	switch {
	case eqFoldBytes(s.fields[1], "R"):
		op = scsi.OpRead16
	case eqFoldBytes(s.fields[1], "W"):
		op = scsi.OpWrite16
	default:
		return false
	}
	offset, ok := parseU64(s.fields[2])
	if !ok {
		return false
	}
	length, ok := parseU64(s.fields[3])
	if !ok {
		return false
	}
	ts, ok := parseScaledU64(s.fields[4], 1)
	if !ok {
		return false
	}
	if !s.haveBase {
		s.base, s.haveBase = ts, true
	}
	if ts < s.base {
		return false
	}

	rec.Seq = s.seq
	s.seq++
	rec.IssueMicros = int64(ts - s.base)
	rec.CompleteMicros = rec.IssueMicros
	rec.VM = s.vms.getPrefixed("dev", s.fields[0])
	rec.Disk = "blk0"
	rec.Op = op
	rec.LBA = offset / 512
	rec.Blocks = uint32((length + 511) / 512)
	rec.Outstanding = 0
	rec.Status = scsi.StatusGood
	return true
}
