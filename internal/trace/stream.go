package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"vscsistats/internal/scsi"
	"vscsistats/internal/vscsi"
)

// StreamWriter is an unbounded tracing observer that appends records to an
// io.Writer as commands complete, for captures larger than any sensible
// ring. The stream format is a sequence of self-describing frames (so the
// string table can grow as new VMs appear), distinct from the at-rest
// format of Write/Read:
//
//	frame := 'S' u16 id u16 len bytes   (define string id)
//	       | 'R' record (44 bytes)      (one command)
//
// Close flushes; ReadStream consumes the format.
type StreamWriter struct {
	w    *bufio.Writer
	ids  map[string]uint16
	next uint16

	count uint64
	err   error
}

// NewStreamWriter begins streaming to w.
func NewStreamWriter(w io.Writer) *StreamWriter {
	return &StreamWriter{w: bufio.NewWriter(w), ids: make(map[string]uint16)}
}

// Count reports records written; Err the first write error (the stream
// stops recording after an error).
func (sw *StreamWriter) Count() uint64 { return sw.count }

// Err reports the first write error; the stream stops recording after one.
func (sw *StreamWriter) Err() error { return sw.err }

var _ vscsi.Observer = (*StreamWriter)(nil)

// OnIssue implements vscsi.Observer.
func (sw *StreamWriter) OnIssue(*vscsi.Request) {}

// OnComplete appends one record frame.
func (sw *StreamWriter) OnComplete(r *vscsi.Request) {
	if sw.err != nil {
		return
	}
	sw.append(FromRequest(r))
}

// Append writes one record directly (for non-observer use).
func (sw *StreamWriter) Append(rec Record) error {
	sw.append(rec)
	return sw.err
}

func (sw *StreamWriter) append(rec Record) {
	// The error is sticky: once anything failed — a short write, a full
	// string table — the stream is truncated and nothing more may count.
	// bufio would absorb writes that follow a non-I/O error, so Count
	// would keep reporting records that never reached the stream.
	if sw.err != nil {
		return
	}
	vm, ok := sw.intern(rec.VM)
	if !ok {
		return
	}
	disk, ok := sw.intern(rec.Disk)
	if !ok {
		return
	}
	var b [1 + recordSize]byte
	b[0] = 'R'
	p := b[1:]
	binary.LittleEndian.PutUint64(p[0:8], rec.Seq)
	binary.LittleEndian.PutUint64(p[8:16], uint64(rec.IssueMicros))
	binary.LittleEndian.PutUint64(p[16:24], uint64(rec.CompleteMicros))
	binary.LittleEndian.PutUint64(p[24:32], rec.LBA)
	binary.LittleEndian.PutUint32(p[32:36], rec.Blocks)
	binary.LittleEndian.PutUint16(p[36:38], vm)
	binary.LittleEndian.PutUint16(p[38:40], disk)
	p[40] = byte(rec.Op)
	p[41] = byte(rec.Status)
	binary.LittleEndian.PutUint16(p[42:44], rec.Outstanding)
	if _, err := sw.w.Write(b[:]); err != nil {
		sw.err = err
		return
	}
	sw.count++
}

func (sw *StreamWriter) intern(s string) (uint16, bool) {
	if id, ok := sw.ids[s]; ok {
		return id, true
	}
	if sw.next == 0xFFFF {
		sw.err = fmt.Errorf("trace: stream string table full")
		return 0, false
	}
	id := sw.next
	sw.next++
	sw.ids[s] = id
	var head [5]byte
	head[0] = 'S'
	binary.LittleEndian.PutUint16(head[1:3], id)
	binary.LittleEndian.PutUint16(head[3:5], uint16(len(s)))
	if _, err := sw.w.Write(head[:]); err != nil {
		sw.err = err
		return 0, false
	}
	if _, err := sw.w.WriteString(s); err != nil {
		sw.err = err
		return 0, false
	}
	return id, true
}

// Close flushes buffered frames. A flush failure is recorded like any
// other write error, so Err() keeps reporting it after Close returns.
func (sw *StreamWriter) Close() error {
	if sw.err != nil {
		return sw.err
	}
	if err := sw.w.Flush(); err != nil {
		sw.err = err
	}
	return sw.err
}

// ReadStream parses a stream produced by StreamWriter.
func ReadStream(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	strs := make(map[uint16]string)
	var out []Record
	var buf [recordSize]byte
	for {
		tag, err := br.ReadByte()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		switch tag {
		case 'S':
			if _, err := io.ReadFull(br, buf[:4]); err != nil {
				return out, fmt.Errorf("%w: string frame: %v", ErrCorrupt, err)
			}
			id := binary.LittleEndian.Uint16(buf[0:2])
			name := make([]byte, binary.LittleEndian.Uint16(buf[2:4]))
			if _, err := io.ReadFull(br, name); err != nil {
				return out, fmt.Errorf("%w: string frame: %v", ErrCorrupt, err)
			}
			strs[id] = string(name)
		case 'R':
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return out, fmt.Errorf("%w: record frame: %v", ErrCorrupt, err)
			}
			vm, okVM := strs[binary.LittleEndian.Uint16(buf[36:38])]
			disk, okDisk := strs[binary.LittleEndian.Uint16(buf[38:40])]
			if !okVM || !okDisk {
				return out, fmt.Errorf("%w: record references undefined name", ErrCorrupt)
			}
			out = append(out, Record{
				Seq:            binary.LittleEndian.Uint64(buf[0:8]),
				IssueMicros:    int64(binary.LittleEndian.Uint64(buf[8:16])),
				CompleteMicros: int64(binary.LittleEndian.Uint64(buf[16:24])),
				LBA:            binary.LittleEndian.Uint64(buf[24:32]),
				Blocks:         binary.LittleEndian.Uint32(buf[32:36]),
				VM:             vm,
				Disk:           disk,
				Op:             scsi.OpCode(buf[40]),
				Status:         scsi.Status(buf[41]),
				Outstanding:    binary.LittleEndian.Uint16(buf[42:44]),
			})
		default:
			return out, fmt.Errorf("%w: unknown frame tag %q", ErrCorrupt, tag)
		}
	}
}
