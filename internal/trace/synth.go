package trace

import (
	"math/rand"

	"vscsistats/internal/scsi"
)

// Synthesize generates a seed-deterministic trace of n records, so parser
// and replay tests and benchmarks need no checked-in fixtures. The fleet
// shape (VM and disk count), per-disk personality (read mix, working-set
// locality, burstiness) and every record all derive from seed via the
// frozen math/rand LCG, so the same (seed, n) yields byte-identical
// records on any machine.
//
// The output exercises every histogram family the collector keeps: mixed
// read/write/flush ops, sequential runs and random seeks, bursty
// interarrivals, queue depths up to 64, latencies spanning the bucket
// range, and a sprinkle of error completions. Records are in global issue
// order with strictly increasing IssueMicros — the legal capture shape —
// so cross-disk issue-time ties cannot make merge order ambiguous in
// tests.
func Synthesize(seed int64, n int) []Record {
	rng := rand.New(rand.NewSource(seed))

	type diskState struct {
		vm, disk  string
		readPct   int   // % of block ops that read
		seqPct    int   // % of ops continuing a sequential run
		window    int64 // working-set span, sectors
		latBase   int64 // µs
		latSpread int64 // µs
		nextLBA   uint64
		depth     uint16
	}
	vms := 2 + rng.Intn(3)
	var disks []*diskState
	for v := 0; v < vms; v++ {
		vmName := "vm" + string(rune('a'+v))
		for d := 0; d < 1+rng.Intn(3); d++ {
			disks = append(disks, &diskState{
				vm:        vmName,
				disk:      "disk" + string(rune('0'+d)),
				readPct:   10 + rng.Intn(85),
				seqPct:    rng.Intn(95),
				window:    1 << (12 + rng.Intn(14)),
				latBase:   int64(50 + rng.Intn(400)),
				latSpread: int64(1 + rng.Intn(30000)),
			})
		}
	}

	recs := make([]Record, n)
	var now int64
	for i := range recs {
		d := disks[rng.Intn(len(disks))]
		// Strictly increasing issue times: bursts advance 1 µs, lulls
		// jump by an exponential-ish gap.
		if rng.Intn(100) < 30 {
			now++
		} else {
			now += 1 + int64(rng.Intn(300))
		}

		var op scsi.OpCode
		blocks := uint32(1 << rng.Intn(9)) // 512 B .. 128 KiB
		switch {
		case rng.Intn(200) == 0:
			op, blocks = scsi.OpSynchronizeCache10, 0
		case rng.Intn(100) < d.readPct:
			op = scsi.OpRead16
		default:
			op = scsi.OpWrite16
		}
		var lba uint64
		if rng.Intn(100) < d.seqPct {
			lba = d.nextLBA
		} else {
			lba = uint64(rng.Int63n(d.window))
		}
		d.nextLBA = lba + uint64(blocks)

		lat := d.latBase + rng.Int63n(d.latSpread)
		status := scsi.StatusGood
		if rng.Intn(2000) == 0 {
			status = scsi.StatusCheckCondition
		}
		// Queue depth drifts with the burstiness of the stream.
		if d.depth < 64 && rng.Intn(3) > 0 {
			d.depth++
		} else if d.depth > 0 {
			d.depth -= uint16(rng.Intn(int(d.depth) + 1))
		}

		recs[i] = Record{
			Seq:            uint64(i),
			IssueMicros:    now,
			CompleteMicros: now + lat,
			VM:             d.vm,
			Disk:           d.disk,
			Op:             op,
			LBA:            lba,
			Blocks:         blocks,
			Outstanding:    d.depth,
			Status:         status,
		}
	}
	return recs
}
