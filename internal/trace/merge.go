package trace

import "io"

// MergeSource restores global issue order over a streaming trace with
// bounded memory: a k-way merge over per-(VM, disk) substreams. Each
// substream gets a small min-heap keyed (IssueMicros, arrival index) — the
// arrival index keeps equal-instant records in capture order, which is
// exactly the tie-break of the legacy sort — and a second heap merges the
// substream heads. Because capture order is issue order within a disk, a
// substream's heap root is that disk's earliest unemitted record, so the
// minimum over roots is the global minimum of everything buffered.
//
// The lookahead window bounds memory at O(window + disks) records in place
// of the legacy materialize-and-sort's O(n): a record is emitted only once
// window records are buffered past it (or the source ends), so any record
// displaced from global issue order by at most window positions lands in
// exact order. Native captures record at completion time, which displaces
// issue order by at most the queue depth times the disk count — far under
// the default window. A record displaced further is emitted late and
// counted in Violations; nothing is dropped.
type MergeSource struct {
	src    RecordSource
	window int

	disks  map[diskKey]*mergeDisk
	heads  []*mergeDisk // min-heap of substream roots
	total  int          // records buffered across all substreams
	nextID uint64       // arrival index

	lastIssue  int64
	haveLast   bool
	violations uint64

	// scratch receives src.Next reads; a loop-local Record would escape
	// through the interface call and cost one heap allocation per record.
	scratch Record

	eof bool
	err error
}

// diskKey identifies a (VM, disk) substream. Comparing interned string
// headers is cheap and allocation-free, unlike concatenated map keys.
type diskKey struct{ vm, disk string }

// mergeEntry is one buffered record with its arrival index.
type mergeEntry struct {
	rec Record
	idx uint64
}

// mergeDisk is one substream: a min-heap of its buffered records.
type mergeDisk struct {
	entries []mergeEntry
	headPos int // index in MergeSource.heads, -1 while empty
}

// DefaultMergeWindow is the lookahead of NewMergeSource when window <= 0:
// 32768 records ≈ 3 MiB buffered, far beyond the issue-order displacement
// any real capture exhibits.
const DefaultMergeWindow = 32768

// NewMergeSource wraps src in a bounded k-way issue-order merge.
// window <= 0 takes DefaultMergeWindow.
func NewMergeSource(src RecordSource, window int) *MergeSource {
	if window <= 0 {
		window = DefaultMergeWindow
	}
	return &MergeSource{src: src, window: window, disks: make(map[diskKey]*mergeDisk)}
}

// Violations reports records that were emitted out of global issue order
// because their displacement exceeded the lookahead window.
func (m *MergeSource) Violations() uint64 { return m.violations }

// Next implements RecordSource: globally issue-ordered records.
func (m *MergeSource) Next(rec *Record) error {
	if m.err != nil {
		return m.err
	}
	for {
		if m.total > m.window || (m.eof && m.total > 0) {
			m.pop(rec)
			return nil
		}
		if m.eof {
			m.err = io.EOF
			return io.EOF
		}
		if err := m.src.Next(&m.scratch); err != nil {
			if err == io.EOF {
				m.eof = true
				continue
			}
			m.err = err
			return err
		}
		m.push(m.scratch)
	}
}

func entryLess(a, b *mergeEntry) bool {
	if a.rec.IssueMicros != b.rec.IssueMicros {
		return a.rec.IssueMicros < b.rec.IssueMicros
	}
	return a.idx < b.idx
}

// push buffers one record in its substream's heap.
func (m *MergeSource) push(r Record) {
	key := diskKey{r.VM, r.Disk}
	d := m.disks[key]
	if d == nil {
		d = &mergeDisk{headPos: -1}
		m.disks[key] = d
	}
	d.entries = append(d.entries, mergeEntry{rec: r, idx: m.nextID})
	m.nextID++
	m.total++
	// Sift the new entry up its substream heap.
	i := len(d.entries) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(&d.entries[i], &d.entries[parent]) {
			break
		}
		d.entries[i], d.entries[parent] = d.entries[parent], d.entries[i]
		i = parent
	}
	if d.headPos == -1 {
		m.headPush(d)
	} else if i == 0 {
		m.headFix(d.headPos) // the substream's root changed
	}
}

// pop emits the global minimum: the smallest substream root.
func (m *MergeSource) pop(rec *Record) {
	d := m.heads[0]
	*rec = d.entries[0].rec
	m.total--
	// Remove the root from the substream heap.
	last := len(d.entries) - 1
	d.entries[0] = d.entries[last]
	d.entries[last] = mergeEntry{} // release the interned-name references
	d.entries = d.entries[:last]
	if last == 0 {
		m.headRemoveTop()
	} else {
		m.siftDown(d)
		m.headFix(0)
	}
	if m.haveLast && rec.IssueMicros < m.lastIssue {
		m.violations++
	} else {
		m.lastIssue = rec.IssueMicros
		m.haveLast = true
	}
}

// siftDown restores d's substream heap after replacing its root.
func (m *MergeSource) siftDown(d *mergeDisk) {
	n := len(d.entries)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && entryLess(&d.entries[l], &d.entries[min]) {
			min = l
		}
		if r < n && entryLess(&d.entries[r], &d.entries[min]) {
			min = r
		}
		if min == i {
			return
		}
		d.entries[i], d.entries[min] = d.entries[min], d.entries[i]
		i = min
	}
}

// headLess compares two substreams by their root entries.
func headLess(a, b *mergeDisk) bool { return entryLess(&a.entries[0], &b.entries[0]) }

func (m *MergeSource) headPush(d *mergeDisk) {
	d.headPos = len(m.heads)
	m.heads = append(m.heads, d)
	m.headUp(d.headPos)
}

func (m *MergeSource) headRemoveTop() {
	last := len(m.heads) - 1
	top := m.heads[0]
	m.heads[0] = m.heads[last]
	m.heads[0].headPos = 0
	m.heads = m.heads[:last]
	top.headPos = -1
	if len(m.heads) > 1 {
		m.headDown(0)
	}
}

// headFix restores the head heap after the substream at position i changed
// its root.
func (m *MergeSource) headFix(i int) {
	if m.headUp(i) == i {
		m.headDown(i)
	}
}

func (m *MergeSource) headUp(i int) int {
	for i > 0 {
		parent := (i - 1) / 2
		if !headLess(m.heads[i], m.heads[parent]) {
			break
		}
		m.headSwap(i, parent)
		i = parent
	}
	return i
}

func (m *MergeSource) headDown(i int) {
	n := len(m.heads)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && headLess(m.heads[l], m.heads[min]) {
			min = l
		}
		if r < n && headLess(m.heads[r], m.heads[min]) {
			min = r
		}
		if min == i {
			return
		}
		m.headSwap(i, min)
		i = min
	}
}

func (m *MergeSource) headSwap(i, j int) {
	m.heads[i], m.heads[j] = m.heads[j], m.heads[i]
	m.heads[i].headPos = i
	m.heads[j].headPos = j
}
