// Package fleetobs characterizes the characterizer: an end-to-end
// tracing and diagnostics layer for the fleet pipeline (agents →
// sharded aggregator → segment log → history), built out of the same
// striped histograms the pipeline ships for guest I/O.
//
// The design follows the paper's Table 2 discipline — instrumentation
// cheap enough to leave on in production:
//
//   - Every pipeline stage (capture, delta render, encode, push, queue
//     dwell on the agent; decode, lock wait, shard ingest, merge
//     recompute, log append, fsync, compaction, replay, history on the
//     aggregator) gets one histogram.Histogram of nanosecond latencies
//     over power-of-two bins, exported as Prometheus cumulative
//     histograms (vscsistats_fleetobs_*).
//   - The hot ingest path is sampled 1-in-N (N a power of two, default
//     64): one atomic increment decides, and unsampled operations pay
//     nothing else.
//   - Structural events (push received, resync with cause, rotation,
//     retention delete, compaction begin/commit, torn-tail truncation,
//     replay summary) go to a bounded mutex-free ring, served as JSON
//     and as a Chrome trace-event view (hosts as processes, stages as
//     threads).
//   - A top-K ring keeps the slowest operations seen, with an atomic
//     admission floor so fast operations skip its lock entirely.
//
// A nil *Tracker is fully inert: every method is nil-safe, so the
// pipeline can call through unconditionally and pay a single branch
// when observability is off.
package fleetobs

import (
	"fmt"
	"sync/atomic"
	"time"

	"vscsistats/internal/histogram"
	"vscsistats/internal/telemetry"
)

// Stage enumerates the pipeline stages that carry a latency histogram.
type Stage uint8

// Agent-side stages, in pipeline order, then aggregator-side stages.
const (
	// StageCapture is the registry snapshot walk on the agent.
	StageCapture Stage = iota
	// StageDeltaRender is Snapshot.Sub against the acked base.
	StageDeltaRender
	// StageEncode is frame encode + gzip.
	StageEncode
	// StagePush is the HTTP push round-trip as the agent sees it.
	StagePush
	// StageQueueDwell is capture-to-send latency: how long a batch sat
	// in the retry queue (including the first, unretried attempt).
	StageQueueDwell
	// StageDecode is wire frame decode on the aggregator.
	StageDecode
	// StageLockWait is time spent waiting for the shard's ingest lock.
	StageLockWait
	// StageIngest is the shard state apply (delta or full) once locked.
	StageIngest
	// StageMergeRecompute is a merge-cache miss recomputing a shard view.
	StageMergeRecompute
	// StageLogAppend is one frame appended to the segment log.
	StageLogAppend
	// StageFsync is one batched fsync of an active segment.
	StageFsync
	// StageCompaction is one whole-shard compaction, begin to commit.
	StageCompaction
	// StageReplay is the whole boot replay of the segment log at open.
	StageReplay
	// StageHistory is one history query over the segment log.
	StageHistory
	// StageReExport is one re-export flush: rendering merged shard
	// state and pushing it upstream as a synthetic host.
	StageReExport

	numStages
)

var stageNames = [numStages]string{
	"capture", "delta_render", "encode", "push", "queue_dwell",
	"decode", "lock_wait", "ingest", "merge_recompute", "log_append",
	"fsync", "compaction", "replay", "history", "re_export",
}

// String returns the stage's snake_case name (also its metric label).
func (s Stage) String() string {
	if s >= numStages {
		return fmt.Sprintf("stage(%d)", uint8(s))
	}
	return stageNames[s]
}

// Scope reports which process the stage runs in: "agent" or
// "aggregator".
func (s Stage) Scope() string {
	if s <= StageQueueDwell {
		return "agent"
	}
	return "aggregator"
}

// Event kinds. KindStage marks a sampled stage latency span; the rest
// are structural pipeline events emitted unconditionally.
const (
	KindStage            = "stage"
	KindPush             = "push"
	KindResync           = "resync"
	KindRotation         = "rotation"
	KindRetention        = "retention"
	KindCompactionBegin  = "compaction_begin"
	KindCompactionCommit = "compaction_commit"
	KindTornTail         = "torn_tail"
	KindReplay           = "replay"
	KindReExport         = "re_export"
)

// eventKinds fixes the export order of per-kind counters; numKinds
// reserves one extra slot for unknown kinds.
var eventKinds = [...]string{
	KindStage, KindPush, KindResync, KindRotation, KindRetention,
	KindCompactionBegin, KindCompactionCommit, KindTornTail, KindReplay,
	KindReExport,
}

const numKinds = len(eventKinds) + 1

func kindIndex(kind string) int {
	for i, k := range eventKinds {
		if k == kind {
			return i
		}
	}
	return -1
}

// Config tunes a Tracker. The zero value selects the defaults.
type Config struct {
	// RingSize bounds the event ring (default 1024, rounded up to a
	// power of two).
	RingSize int
	// SlowK bounds the slowest-operations ring (default 64).
	SlowK int
	// SampleEvery samples 1 in N stage observations on the hot path
	// (default 64, rounded up to a power of two; 1 observes everything).
	// Structural events are never sampled.
	SampleEvery int
}

func (c Config) withDefaults() Config {
	if c.RingSize <= 0 {
		c.RingSize = 1024
	}
	c.RingSize = ceilPow2(c.RingSize)
	if c.SlowK <= 0 {
		c.SlowK = 64
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 64
	}
	c.SampleEvery = ceilPow2(c.SampleEvery)
	return c
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Tracker is the per-process observability hub: one histogram per
// stage, the event ring, the slow ring, and the sampling counter. One
// Tracker serves one process (an agent or an aggregator); both ends of
// a push each own their own.
type Tracker struct {
	cfg   Config
	hists [numStages]*histogram.Histogram
	ops   atomic.Uint64
	mask  uint64
	ring  *eventRing
	slow  *slowRing
	kinds [numKinds]atomic.Int64 // +1 slot: unknown kinds
}

// StageEdges is the shared bin layout for stage latencies: power-of-two
// nanosecond bins from 256ns to 16s, the paper's irregular-bin trick
// applied to our own pipeline (sub-microsecond lock waits and
// multi-second fsyncs share one histogram without resolution loss where
// it matters).
var StageEdges = histogram.PowerOfTwoEdges(256, 1<<34)

// New builds a Tracker. The zero Config gives a 1024-event ring, a
// top-64 slow ring, and 1-in-64 sampling.
func New(cfg Config) *Tracker {
	cfg = cfg.withDefaults()
	t := &Tracker{
		cfg:  cfg,
		mask: uint64(cfg.SampleEvery - 1),
		ring: newEventRing(cfg.RingSize),
		slow: newSlowRing(cfg.SlowK),
	}
	for st := Stage(0); st < numStages; st++ {
		t.hists[st] = histogram.New("fleetobs_"+st.String(), "ns", StageEdges)
	}
	return t
}

// Sample decides whether this hot-path operation should be timed: true
// for 1 in SampleEvery calls. It is one atomic add and a mask; a nil
// Tracker always returns false.
func (t *Tracker) Sample() bool {
	if t == nil {
		return false
	}
	return t.ops.Add(1)&t.mask == 0
}

// SampleAt is the stateless variant of Sample for callers that already
// hold a monotonically increasing per-source sequence: true for 1 in
// SampleEvery values of n. No shared counter, no atomic — a mask load
// and a compare — so the aggregator's memory-path ingest fence stays
// within its overhead budget even at tens of millions of batches per
// second. Use Sample when no such sequence exists (e.g. before a frame
// is decoded).
func (t *Tracker) SampleAt(n uint64) bool {
	if t == nil {
		return false
	}
	return n&t.mask == 0
}

// Hist returns the stage's histogram (nil on a nil Tracker), for
// callers that want a histogram.Timer directly.
func (t *Tracker) Hist(st Stage) *histogram.Histogram {
	if t == nil || st >= numStages {
		return nil
	}
	return t.hists[st]
}

// StartStage begins timing st; pair with Timer.Stop. Inert on a nil
// Tracker. Note this records only the histogram sample — use Observe
// when the span should also appear in the event ring.
func (t *Tracker) StartStage(st Stage) histogram.Timer {
	return t.Hist(st).StartTimer()
}

// Observe records one timed stage span: a histogram sample, a
// KindStage event in the ring, and a slow-ring offer. The event's
// Stage/Scope/Kind/UnixNano/DurationNanos fields are filled here;
// callers set Host, Shard, TraceID, BatchSeq, Detail as they know
// them. No-op on a nil Tracker.
func (t *Tracker) Observe(st Stage, d time.Duration, e Event) {
	if t == nil {
		return
	}
	t.hists[st].ObserveDuration(d)
	e.Kind = KindStage
	e.Scope = st.Scope()
	e.Stage = st.String()
	e.DurationNanos = int64(d)
	if e.UnixNano == 0 {
		e.UnixNano = time.Now().UnixNano()
	}
	t.emit(e)
	t.slow.offer(e)
}

// ObserveSince is Observe with the duration measured from start.
func (t *Tracker) ObserveSince(st Stage, start time.Time, e Event) time.Duration {
	d := time.Since(start)
	t.Observe(st, d, e)
	return d
}

// Emit records a structural (non-stage) event: kind, cause and
// whatever context the caller filled in. Never sampled. No-op on a nil
// Tracker.
func (t *Tracker) Emit(e Event) {
	if t == nil {
		return
	}
	if e.UnixNano == 0 {
		e.UnixNano = time.Now().UnixNano()
	}
	t.emit(e)
	if e.DurationNanos > 0 && e.Kind != KindStage {
		// Durable structural events (compaction commit, replay) compete
		// for the slow ring too — a 2s compaction should surface next to
		// a 2s fsync.
		t.slow.offer(e)
	}
}

func (t *Tracker) emit(e Event) {
	if i := kindIndex(e.Kind); i >= 0 {
		t.kinds[i].Add(1)
	} else {
		t.kinds[len(eventKinds)].Add(1)
	}
	t.ring.push(e)
}

// Events returns up to limit most-recent ring events, oldest first
// (limit <= 0 means the whole ring). Nil Tracker returns nil.
func (t *Tracker) Events(limit int) []Event {
	if t == nil {
		return nil
	}
	return t.ring.events(limit)
}

// EventsTotal returns how many events have ever been emitted (ring
// overwrites included).
func (t *Tracker) EventsTotal() int64 {
	if t == nil {
		return 0
	}
	var total int64
	for i := range t.kinds {
		total += t.kinds[i].Load()
	}
	return total
}

// Slowest returns up to limit retained operations at least threshold
// long, slowest first (limit <= 0 means all retained).
func (t *Tracker) Slowest(threshold time.Duration, limit int) []Event {
	if t == nil {
		return nil
	}
	return t.slow.slowest(threshold, limit)
}

// StageSnapshot pairs a stage with its histogram snapshot.
type StageSnapshot struct {
	Stage Stage
	Hist  *histogram.Snapshot
}

// Stages snapshots every stage histogram, in Stage order.
func (t *Tracker) Stages() []StageSnapshot {
	if t == nil {
		return nil
	}
	out := make([]StageSnapshot, 0, numStages)
	for st := Stage(0); st < numStages; st++ {
		out = append(out, StageSnapshot{Stage: st, Hist: t.hists[st].Snapshot()})
	}
	return out
}

// FleetObsStages implements telemetry.FleetObsSource.
func (t *Tracker) FleetObsStages() []telemetry.FleetObsStage {
	if t == nil {
		return nil
	}
	out := make([]telemetry.FleetObsStage, 0, numStages)
	for st := Stage(0); st < numStages; st++ {
		out = append(out, telemetry.FleetObsStage{
			Scope: st.Scope(), Stage: st.String(), Hist: t.hists[st].Snapshot(),
		})
	}
	return out
}

// FleetObsEvents implements telemetry.FleetObsSource: per-kind event
// counts in fixed order (unknown kinds aggregate under "other").
func (t *Tracker) FleetObsEvents() []telemetry.FleetObsEventCount {
	if t == nil {
		return nil
	}
	out := make([]telemetry.FleetObsEventCount, 0, len(eventKinds)+1)
	for i, k := range eventKinds {
		out = append(out, telemetry.FleetObsEventCount{Kind: k, Count: t.kinds[i].Load()})
	}
	out = append(out, telemetry.FleetObsEventCount{Kind: "other", Count: t.kinds[len(eventKinds)].Load()})
	return out
}
