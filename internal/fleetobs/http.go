package fleetobs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"
)

// ServeEvents handles GET /fleet/events: the event ring as JSON,
// oldest first. Query parameters: kind= and host= filter, limit=
// bounds the result (default: the whole ring).
func (t *Tracker) ServeEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, `{"error": "method not allowed"}`, http.StatusMethodNotAllowed)
		return
	}
	kind := r.URL.Query().Get("kind")
	host := r.URL.Query().Get("host")
	limit := 0
	if s := r.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(w, `{"error": "bad limit"}`, http.StatusBadRequest)
			return
		}
		limit = n
	}
	events := t.Events(0)
	filtered := events[:0:0]
	for _, e := range events {
		if kind != "" && e.Kind != kind {
			continue
		}
		if host != "" && e.Host != host {
			continue
		}
		filtered = append(filtered, e)
	}
	if limit > 0 && len(filtered) > limit {
		filtered = filtered[len(filtered)-limit:]
	}
	writeObsJSON(w, map[string]any{
		"total":  t.EventsTotal(),
		"events": filtered,
	})
}

// ServeSlow handles GET /fleet/slow: the retained slowest operations,
// slowest first. threshold= takes a Go duration ("10ms") or an integer
// nanosecond count; limit= bounds the result.
func (t *Tracker) ServeSlow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, `{"error": "method not allowed"}`, http.StatusMethodNotAllowed)
		return
	}
	var threshold time.Duration
	if s := r.URL.Query().Get("threshold"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			n, nerr := strconv.ParseInt(s, 10, 64)
			if nerr != nil {
				http.Error(w, `{"error": "bad threshold (want duration like 10ms or integer nanos)"}`, http.StatusBadRequest)
				return
			}
			d = time.Duration(n)
		}
		threshold = d
	}
	limit := 0
	if s := r.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(w, `{"error": "bad limit"}`, http.StatusBadRequest)
			return
		}
		limit = n
	}
	writeObsJSON(w, map[string]any{
		"threshold_nanos": threshold.Nanoseconds(),
		"ops":             t.Slowest(threshold, limit),
	})
}

func writeObsJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// ChromeTraceHandler serves the event ring in the Chrome trace-event
// format (load in chrome://tracing or Perfetto). Hosts map to
// processes, stages and event kinds to threads; events without a host
// group under a synthetic process named after their scope.
func (t *Tracker) ChromeTraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		t.WriteChromeTrace(w)
	})
}

// WriteChromeTrace renders the current event ring as a Chrome
// trace-event JSON array. Timed events become complete ("X") slices
// whose start is end-time minus duration; instantaneous events become
// instants ("i"). Process and thread ids are assigned stably by sorted
// name, so repeated captures line up.
func (t *Tracker) WriteChromeTrace(w io.Writer) {
	events := t.Events(0)

	// A process per host (or per scope for host-less events); a thread
	// per stage/kind within each process.
	procName := func(e Event) string {
		if e.Host != "" {
			return e.Host
		}
		if e.Scope != "" {
			return e.Scope
		}
		return "fleet"
	}
	threadName := func(e Event) string {
		if e.Stage != "" {
			return e.Stage
		}
		return e.Kind
	}
	procSet := map[string]bool{}
	threadSet := map[string]bool{} // "proc\x00thread"
	for _, e := range events {
		p := procName(e)
		procSet[p] = true
		threadSet[p+"\x00"+threadName(e)] = true
	}
	procs := make([]string, 0, len(procSet))
	for p := range procSet {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	pid := map[string]int{}
	for i, p := range procs {
		pid[p] = i + 1
	}
	threads := make([]string, 0, len(threadSet))
	for th := range threadSet {
		threads = append(threads, th)
	}
	sort.Strings(threads)
	tid := map[string]int{}
	next := map[string]int{} // per-process thread counter
	for _, th := range threads {
		var proc string
		for i := 0; i < len(th); i++ {
			if th[i] == 0 {
				proc = th[:i]
				break
			}
		}
		next[proc]++
		tid[th] = next[proc]
	}

	first := true
	emit := func(format string, args ...any) {
		if !first {
			io.WriteString(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, format, args...)
	}
	io.WriteString(w, "[\n")
	for _, p := range procs {
		emit(`{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":%q}}`, pid[p], p)
	}
	for _, th := range threads {
		var proc, name string
		for i := 0; i < len(th); i++ {
			if th[i] == 0 {
				proc, name = th[:i], th[i+1:]
				break
			}
		}
		emit(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":%q}}`,
			pid[proc], tid[th], name)
	}
	for _, e := range events {
		p := procName(e)
		th := p + "\x00" + threadName(e)
		args, _ := json.Marshal(map[string]any{
			"seq": e.Seq, "trace_id": e.TraceID, "batch_seq": e.BatchSeq,
			"shard": e.Shard, "cause": e.Cause, "detail": e.Detail,
		})
		name := threadName(e)
		if e.Cause != "" {
			name += ":" + e.Cause
		}
		cat := "pipeline"
		if e.Kind != KindStage {
			cat = "control"
		}
		if e.DurationNanos > 0 {
			startMicros := (e.UnixNano - e.DurationNanos) / 1000
			emit(`{"ph":"X","name":%q,"cat":%q,"pid":%d,"tid":%d,"ts":%d,"dur":%d,"args":%s}`,
				name, cat, pid[p], tid[th], startMicros, e.DurationNanos/1000, args)
			continue
		}
		emit(`{"ph":"i","name":%q,"cat":%q,"pid":%d,"tid":%d,"ts":%d,"s":"p","args":%s}`,
			name, cat, pid[p], tid[th], e.UnixNano/1000, args)
	}
	io.WriteString(w, "\n]\n")
}
