package fleetobs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one pipeline event. Stage-latency spans (Kind "stage") and
// structural events (resync, rotation, compaction, ...) share the
// type; unset fields are omitted from the JSON view.
type Event struct {
	// Seq is the ring-assigned global sequence, monotone per Tracker.
	Seq uint64 `json:"seq"`
	// UnixNano is when the event was recorded (for spans: when the span
	// ended).
	UnixNano int64 `json:"unix_nano"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Scope is "agent" or "aggregator" where known.
	Scope string `json:"scope,omitempty"`
	// Stage names the pipeline stage for Kind "stage" spans.
	Stage string `json:"stage,omitempty"`
	// Host is the fleet host the event concerns (the sender for pushes).
	Host string `json:"host,omitempty"`
	// Shard is the aggregator shard index, -1 when not applicable.
	Shard int `json:"shard,omitempty"`
	// TraceID links the event to one push's end-to-end trace.
	TraceID string `json:"trace_id,omitempty"`
	// BatchSeq is the batch sequence number involved, when any.
	BatchSeq uint64 `json:"batch_seq,omitempty"`
	// Cause explains resyncs ("seq-gap", "unknown-host", "unknown-disk",
	// "layout-mismatch") and retention/truncation events.
	Cause string `json:"cause,omitempty"`
	// DurationNanos is the span length for timed events.
	DurationNanos int64 `json:"duration_nanos,omitempty"`
	// Detail carries free-form context (segment paths, replay counts).
	Detail string `json:"detail,omitempty"`
}

// eventRing is a bounded, mutex-free ring of events. Writers reserve a
// slot with one atomic add and publish an immutable *Event with one
// atomic store; readers snapshot whatever pointers are published. Under
// contention a reader can observe slots from different laps — events()
// therefore orders by Seq and drops nothing else, trading exact
// ring-lap consistency for a push path with no lock at all.
type eventRing struct {
	slots []atomic.Pointer[Event]
	mask  uint64
	next  atomic.Uint64
}

func newEventRing(size int) *eventRing {
	return &eventRing{slots: make([]atomic.Pointer[Event], size), mask: uint64(size - 1)}
}

func (r *eventRing) push(e Event) {
	seq := r.next.Add(1)
	e.Seq = seq
	r.slots[(seq-1)&r.mask].Store(&e)
}

func (r *eventRing) events(limit int) []Event {
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		if p := r.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// total returns how many events were ever pushed.
func (r *eventRing) total() uint64 { return r.next.Load() }

// slowRing retains the K slowest operations seen. An atomic floor
// (the smallest retained duration once the ring is full) lets the
// overwhelming majority of fast operations bail with one atomic load
// before ever touching the mutex.
type slowRing struct {
	k     int
	floor atomic.Int64
	mu    sync.Mutex
	ops   []Event // unordered; scanned on admit (K is small)
}

func newSlowRing(k int) *slowRing {
	return &slowRing{k: k, ops: make([]Event, 0, k)}
}

func (r *slowRing) offer(e Event) {
	if e.DurationNanos <= 0 {
		return
	}
	if f := r.floor.Load(); e.DurationNanos <= f {
		return // ring is full of slower ops; skip the lock
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ops) < r.k {
		r.ops = append(r.ops, e)
		if len(r.ops) == r.k {
			r.floor.Store(r.minLocked())
		}
		return
	}
	// Replace the current minimum if we beat it (floor may be stale —
	// recheck under the lock).
	minI := 0
	for i := 1; i < len(r.ops); i++ {
		if r.ops[i].DurationNanos < r.ops[minI].DurationNanos {
			minI = i
		}
	}
	if e.DurationNanos <= r.ops[minI].DurationNanos {
		return
	}
	r.ops[minI] = e
	r.floor.Store(r.minLocked())
}

func (r *slowRing) minLocked() int64 {
	m := r.ops[0].DurationNanos
	for _, op := range r.ops[1:] {
		if op.DurationNanos < m {
			m = op.DurationNanos
		}
	}
	return m
}

func (r *slowRing) slowest(threshold time.Duration, limit int) []Event {
	th := threshold.Nanoseconds()
	r.mu.Lock()
	out := make([]Event, 0, len(r.ops))
	for _, op := range r.ops {
		if op.DurationNanos >= th {
			out = append(out, op)
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].DurationNanos != out[j].DurationNanos {
			return out[i].DurationNanos > out[j].DurationNanos
		}
		return out[i].Seq < out[j].Seq
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}
