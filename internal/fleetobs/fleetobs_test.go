package fleetobs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestStageNamesAndScopes pins the stage taxonomy: every stage has a
// distinct snake_case name, agent stages precede aggregator stages, and
// the scope split falls exactly after queue_dwell.
func TestStageNamesAndScopes(t *testing.T) {
	seen := map[string]bool{}
	for st := Stage(0); st < numStages; st++ {
		name := st.String()
		if name == "" || strings.Contains(name, "stage(") {
			t.Fatalf("stage %d has no name", st)
		}
		if seen[name] {
			t.Fatalf("duplicate stage name %q", name)
		}
		seen[name] = true
		want := "aggregator"
		if st <= StageQueueDwell {
			want = "agent"
		}
		if st.Scope() != want {
			t.Errorf("stage %s scope = %q, want %q", name, st.Scope(), want)
		}
	}
	if Stage(numStages).String() == stageNames[0] {
		t.Error("out-of-range stage resolved to a real name")
	}
}

// TestRingOrderingAndWrap fills a small ring past capacity and checks
// the survivors are the newest events, in order, with monotone
// sequence numbers.
func TestRingOrderingAndWrap(t *testing.T) {
	tr := New(Config{RingSize: 4, SampleEvery: 1})
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: KindRotation, Shard: i})
	}
	events := tr.Events(0)
	if len(events) != 4 {
		t.Fatalf("ring of 4 holds %d events", len(events))
	}
	for i, e := range events {
		if want := uint64(7 + i); e.Seq != want {
			t.Errorf("event %d seq = %d, want %d (newest 4 of 10)", i, e.Seq, want)
		}
		if want := 6 + i; e.Shard != want {
			t.Errorf("event %d shard = %d, want %d", i, e.Shard, want)
		}
	}
	if got := tr.Events(2); len(got) != 2 || got[1].Seq != 10 {
		t.Errorf("Events(2) = %v, want the last two", got)
	}
	if tr.EventsTotal() != 10 {
		t.Errorf("EventsTotal = %d, want 10 (overwrites included)", tr.EventsTotal())
	}
}

// TestSlowRingKeepsTopK pins the top-K property: with K=2, the two
// slowest spans survive whatever order they arrive in, slowest first.
func TestSlowRingKeepsTopK(t *testing.T) {
	tr := New(Config{SlowK: 2, SampleEvery: 1})
	for _, ms := range []int{3, 1, 7, 2, 5} {
		tr.Observe(StageIngest, time.Duration(ms)*time.Millisecond, Event{Shard: ms})
	}
	slow := tr.Slowest(0, 0)
	if len(slow) != 2 {
		t.Fatalf("slow ring holds %d, want 2", len(slow))
	}
	if slow[0].DurationNanos != (7 * time.Millisecond).Nanoseconds() ||
		slow[1].DurationNanos != (5 * time.Millisecond).Nanoseconds() {
		t.Errorf("slowest = %d, %d ns; want 7ms, 5ms", slow[0].DurationNanos, slow[1].DurationNanos)
	}
	if got := tr.Slowest(6*time.Millisecond, 0); len(got) != 1 {
		t.Errorf("threshold 6ms returned %d ops, want 1", len(got))
	}
}

// TestSamplingMask checks Sample admits exactly 1 in SampleEvery calls.
func TestSamplingMask(t *testing.T) {
	tr := New(Config{SampleEvery: 4})
	hits := 0
	for i := 0; i < 64; i++ {
		if tr.Sample() {
			hits++
		}
	}
	if hits != 16 {
		t.Errorf("1-in-4 sampling admitted %d of 64", hits)
	}
	every := New(Config{SampleEvery: 1})
	for i := 0; i < 8; i++ {
		if !every.Sample() {
			t.Fatal("SampleEvery=1 skipped an operation")
		}
	}
}

// TestNilTrackerInert: a nil *Tracker must absorb every call — the
// pipeline calls through unconditionally.
func TestNilTrackerInert(t *testing.T) {
	var tr *Tracker
	if tr.Sample() {
		t.Error("nil tracker sampled")
	}
	tr.Observe(StageIngest, time.Millisecond, Event{})
	if d := tr.ObserveSince(StageIngest, time.Now(), Event{}); d < 0 {
		t.Error("nil ObserveSince returned negative duration")
	}
	tr.Emit(Event{Kind: KindReplay})
	tr.StartStage(StageCapture).Stop()
	if tr.Events(0) != nil || tr.Slowest(0, 0) != nil || tr.Stages() != nil {
		t.Error("nil tracker returned data")
	}
	if tr.EventsTotal() != 0 {
		t.Error("nil tracker counted events")
	}
	if tr.FleetObsStages() != nil || tr.FleetObsEvents() != nil {
		t.Error("nil tracker exported telemetry")
	}
	if tr.Hist(StageIngest) != nil {
		t.Error("nil tracker returned a histogram")
	}
}

// TestObserveRecordsEverything: one Observe lands in the stage
// histogram, the event ring, the per-kind counters and (being the
// slowest seen) the slow ring.
func TestObserveRecordsEverything(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	tr.Observe(StageDecode, 3*time.Millisecond, Event{Host: "esx-1", TraceID: "esx-1-0-7", BatchSeq: 7})
	if got := tr.Hist(StageDecode).Total(); got != 1 {
		t.Errorf("decode histogram total = %d, want 1", got)
	}
	events := tr.Events(0)
	if len(events) != 1 {
		t.Fatalf("%d events, want 1", len(events))
	}
	e := events[0]
	if e.Kind != KindStage || e.Stage != "decode" || e.Scope != "aggregator" ||
		e.TraceID != "esx-1-0-7" || e.DurationNanos != (3*time.Millisecond).Nanoseconds() {
		t.Errorf("event = %+v", e)
	}
	if e.UnixNano == 0 {
		t.Error("event timestamp not stamped")
	}
	if slow := tr.Slowest(0, 0); len(slow) != 1 || slow[0].TraceID != "esx-1-0-7" {
		t.Errorf("slow ring = %+v", slow)
	}
	counts := tr.FleetObsEvents()
	var stageCount int64
	for _, c := range counts {
		if c.Kind == KindStage {
			stageCount = c.Count
		}
	}
	if stageCount != 1 {
		t.Errorf("stage kind count = %d, want 1", stageCount)
	}
}

// TestServeEventsFilters drives the /fleet/events handler: kind and
// host filters, limit, and the method guard.
func TestServeEventsFilters(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	tr.Emit(Event{Kind: KindResync, Host: "esx-a", Cause: "seq-gap"})
	tr.Emit(Event{Kind: KindRotation, Host: "esx-b"})
	tr.Emit(Event{Kind: KindResync, Host: "esx-b", Cause: "unknown-host"})

	get := func(url string) (int, map[string]json.RawMessage) {
		rec := httptest.NewRecorder()
		tr.ServeEvents(rec, httptest.NewRequest("GET", url, nil))
		var body map[string]json.RawMessage
		if rec.Code == 200 {
			if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
				t.Fatalf("%s: bad JSON: %v", url, err)
			}
		}
		return rec.Code, body
	}
	countEvents := func(body map[string]json.RawMessage) int {
		var events []Event
		if err := json.Unmarshal(body["events"], &events); err != nil {
			t.Fatal(err)
		}
		return len(events)
	}

	if code, body := get("/fleet/events"); code != 200 || countEvents(body) != 3 {
		t.Errorf("unfiltered: code %d, %d events", code, countEvents(body))
	}
	if _, body := get("/fleet/events?kind=resync"); countEvents(body) != 2 {
		t.Error("kind filter failed")
	}
	if _, body := get("/fleet/events?host=esx-b"); countEvents(body) != 2 {
		t.Error("host filter failed")
	}
	if _, body := get("/fleet/events?kind=resync&host=esx-b&limit=1"); countEvents(body) != 1 {
		t.Error("combined filter + limit failed")
	}
	rec := httptest.NewRecorder()
	tr.ServeEvents(rec, httptest.NewRequest("POST", "/fleet/events", nil))
	if rec.Code != 405 {
		t.Errorf("POST /fleet/events = %d, want 405", rec.Code)
	}
}

// TestServeSlowThresholds drives /fleet/slow: duration and integer
// thresholds, plus the bad-threshold guard.
func TestServeSlowThresholds(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	tr.Observe(StageFsync, 10*time.Millisecond, Event{Shard: 0})
	tr.Observe(StageFsync, 1*time.Millisecond, Event{Shard: 1})

	get := func(url string) (int, int) {
		rec := httptest.NewRecorder()
		tr.ServeSlow(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != 200 {
			return rec.Code, 0
		}
		var body struct {
			Ops []Event `json:"ops"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("%s: bad JSON: %v", url, err)
		}
		return rec.Code, len(body.Ops)
	}
	if code, n := get("/fleet/slow"); code != 200 || n != 2 {
		t.Errorf("no threshold: code %d, %d ops", code, n)
	}
	if _, n := get("/fleet/slow?threshold=5ms"); n != 1 {
		t.Errorf("threshold=5ms returned %d ops, want 1", n)
	}
	if _, n := get("/fleet/slow?threshold=5000000"); n != 1 {
		t.Errorf("integer nanos threshold returned %d ops, want 1", n)
	}
	if code, _ := get("/fleet/slow?threshold=gibberish"); code != 400 {
		t.Errorf("bad threshold = %d, want 400", code)
	}
}

// TestChromeTraceValidJSON renders a mixed ring (spans, instants,
// causes) and checks the output is one valid JSON array with process
// and thread metadata and correctly classified phases.
func TestChromeTraceValidJSON(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	tr.Observe(StagePush, 2*time.Millisecond, Event{Host: "esx-1", TraceID: "t-1"})
	tr.Emit(Event{Kind: KindResync, Host: "esx-1", Cause: "seq-gap"})
	tr.Emit(Event{Kind: KindRotation, Scope: "aggregator", Shard: 3})

	rec := httptest.NewRecorder()
	tr.ChromeTraceHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/fleettrace", nil))
	if rec.Code != 200 {
		t.Fatalf("trace handler = %d", rec.Code)
	}
	var entries []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &entries); err != nil {
		t.Fatalf("trace output is not a JSON array: %v", err)
	}
	var metas, slices, instants int
	names := map[string]bool{}
	for _, e := range entries {
		switch e["ph"] {
		case "M":
			metas++
			if args, ok := e["args"].(map[string]any); ok {
				names[args["name"].(string)] = true
			}
		case "X":
			slices++
			if e["dur"].(float64) <= 0 {
				t.Error("span with non-positive dur")
			}
		case "i":
			instants++
		default:
			t.Errorf("unknown phase %v", e["ph"])
		}
	}
	// esx-1 and aggregator processes, plus a thread per stage/kind.
	if !names["esx-1"] || !names["aggregator"] || !names["push"] || !names["rotation"] {
		t.Errorf("metadata names = %v", names)
	}
	if metas < 4 || slices != 1 || instants != 2 {
		t.Errorf("metas/slices/instants = %d/%d/%d, want >=4/1/2", metas, slices, instants)
	}
}

// TestConcurrentObserveAndRead hammers one tracker from writers and
// readers at once — the -race proof for the lock-free ring, the slow
// ring's admission floor and the striped histograms.
func TestConcurrentObserveAndRead(t *testing.T) {
	tr := New(Config{RingSize: 64, SlowK: 8, SampleEvery: 1})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				tr.Observe(Stage(i%int(numStages)), time.Duration(i+1)*time.Microsecond, Event{Shard: w})
				tr.Emit(Event{Kind: KindPush, Shard: w, BatchSeq: uint64(i)})
			}
		}(w)
	}
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			events := tr.Events(0)
			for i := 1; i < len(events); i++ {
				if events[i].Seq <= events[i-1].Seq {
					t.Error("ring events out of order")
					return
				}
			}
			tr.Slowest(0, 0)
			tr.Stages()
			tr.WriteChromeTrace(io.Discard)
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()

	if got := tr.EventsTotal(); got != 4*500*2 {
		t.Errorf("EventsTotal = %d, want %d", got, 4*500*2)
	}
}
