package storage

import "container/list"

// cacheLineSectors is the array cache line size: 64 KB, a typical array
// track/page size.
const cacheLineSectors = 128

// Cache is an LRU array cache over fixed 64 KB lines, with hit/miss
// accounting. It backs both the read cache ("an active read cache (2.5GB)"
// for the CX3, §5.3) and write-back absorption (§3.4's "write-back cache
// strategy").
type Cache struct {
	capacity int // lines; 0 means the cache is disabled
	lines    map[uint64]*list.Element
	lru      *list.List // front = most recent; values are line keys

	hits, misses uint64
	dirty        map[uint64]bool // lines written but not yet destaged
}

// NewCache returns a cache holding capacityBytes of 64 KB lines. A zero
// capacity models the paper's "read cache turned off" configuration: every
// lookup misses and Insert is a no-op.
func NewCache(capacityBytes int64) *Cache {
	return &Cache{
		capacity: int(capacityBytes / (cacheLineSectors * 512)),
		lines:    make(map[uint64]*list.Element),
		lru:      list.New(),
		dirty:    make(map[uint64]bool),
	}
}

// Enabled reports whether the cache has any capacity.
func (c *Cache) Enabled() bool { return c.capacity > 0 }

// Hits and Misses report lookup accounting.
func (c *Cache) Hits() uint64   { return c.hits }
func (c *Cache) Misses() uint64 { return c.misses }

// Len returns the number of resident lines.
func (c *Cache) Len() int { return len(c.lines) }

func lineOf(lba uint64) uint64 { return lba / cacheLineSectors }

// Contains performs a lookup without accounting or LRU promotion.
func (c *Cache) Contains(lba uint64) bool {
	_, ok := c.lines[lineOf(lba)]
	return ok
}

// Lookup reports whether every line of the extent is resident, counting one
// hit or miss and promoting touched lines.
func (c *Cache) Lookup(lba uint64, sectors uint32) bool {
	if c.capacity == 0 {
		c.misses++
		return false
	}
	all := true
	for line := lineOf(lba); line <= lineOf(lba+uint64(sectors)-1); line++ {
		if el, ok := c.lines[line]; ok {
			c.lru.MoveToFront(el)
		} else {
			all = false
		}
	}
	if all {
		c.hits++
	} else {
		c.misses++
	}
	return all
}

// Insert makes the extent's lines resident, evicting LRU lines as needed.
func (c *Cache) Insert(lba uint64, sectors uint32) {
	if c.capacity == 0 || sectors == 0 {
		return
	}
	for line := lineOf(lba); line <= lineOf(lba+uint64(sectors)-1); line++ {
		if el, ok := c.lines[line]; ok {
			c.lru.MoveToFront(el)
			continue
		}
		for len(c.lines) >= c.capacity {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			delete(c.lines, oldest.Value.(uint64))
		}
		c.lines[line] = c.lru.PushFront(line)
	}
}

// InsertAhead inserts readAhead lines following the extent — the array's
// sequential prefetch. It costs no simulated time by itself; callers charge
// prefetch transfer time to the triggering miss.
func (c *Cache) InsertAhead(lba uint64, sectors uint32, readAhead int) {
	if readAhead <= 0 {
		return
	}
	next := (lineOf(lba+uint64(sectors)-1) + 1) * cacheLineSectors
	c.Insert(next, uint32(readAhead*cacheLineSectors))
}

// Dirty returns the number of lines awaiting destage.
func (c *Cache) Dirty() int { return len(c.dirty) }

// MarkDirty marks the extent's lines dirty and reports how many were newly
// dirtied — re-writes of an already-dirty line are absorbed with no new
// destage work, which is a large part of why write-back caches win.
func (c *Cache) MarkDirty(lba uint64, sectors uint32) (newLines int) {
	for line := lineOf(lba); line <= lineOf(lba+uint64(sectors)-1); line++ {
		if !c.dirty[line] {
			c.dirty[line] = true
			newLines++
		}
	}
	return newLines
}

// Destaged clears the extent's dirty marks after a flush to disk.
func (c *Cache) Destaged(lba uint64, sectors uint32) {
	for line := lineOf(lba); line <= lineOf(lba+uint64(sectors)-1); line++ {
		delete(c.dirty, line)
	}
}
