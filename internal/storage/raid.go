package storage

import "vscsistats/internal/simclock"

// RAID failure and rebuild: FailDisk takes a spindle out of service;
// RAID5 arrays keep serving through the degraded paths in fanOut, and
// ReplaceAndRebuild swaps in a fresh spindle and reconstructs it row by row
// from the survivors. Rebuild I/O shares the spindles with foreground
// traffic, so a rebuilding array is visibly slower — the classic RAID
// trade-off, and another workload-interference source the characterization
// service can observe.

// rebuildState tracks an in-progress reconstruction.
type rebuildState struct {
	disk      int
	watermark uint64 // rows below this diskLBA are reconstructed
	rows      uint64
	done      func()
}

// FailDisk marks a spindle failed. In-flight operations on it still
// complete (the failure is detected at the controller for new commands).
// Failing an already-failed disk is a no-op.
func (a *Array) FailDisk(i int) {
	a.failed[i] = true
}

// Failed reports whether the spindle is out of service.
func (a *Array) Failed(i int) bool { return a.failed[i] }

// Degraded reports whether any spindle is failed or rebuilding.
func (a *Array) Degraded() bool {
	for _, f := range a.failed {
		if f {
			return true
		}
	}
	return a.rebuild != nil
}

// DegradedOps counts operations served through a degraded path.
func (a *Array) DegradedOps() uint64 { return a.degradedOps }

// RebuildProgress reports reconstruction progress in [0,1]; 1 when no
// rebuild is running.
func (a *Array) RebuildProgress() float64 {
	if a.rebuild == nil {
		return 1
	}
	if a.rebuild.rows == 0 {
		return 1
	}
	return float64(a.rebuild.watermark) / float64(a.rebuild.rows*a.cfg.StripeSectors)
}

// ReplaceAndRebuild swaps spindle i for a fresh one and reconstructs its
// contents in the background, invoking done when the array is whole again.
// RAID0 has no redundancy: the replacement comes up immediately (the data
// on it is lost, which the caller's dataset must tolerate) and done runs at
// once. Only one rebuild may run at a time; starting a second panics.
func (a *Array) ReplaceAndRebuild(i int, done func()) {
	if !a.failed[i] {
		panic("storage: rebuilding a healthy disk")
	}
	if a.rebuild != nil {
		panic("storage: rebuild already in progress")
	}
	a.disks[i] = NewDisk(a.eng, a.cfg.DiskParams, simclock.NewRand(a.cfg.Seed+int64(i)+100))
	a.failed[i] = false
	if a.cfg.Level == RAID0 {
		if done != nil {
			done()
		}
		return
	}
	rows := a.cfg.DiskParams.CapacitySectors / a.cfg.StripeSectors
	a.rebuild = &rebuildState{disk: i, rows: rows, done: done}
	a.rebuildRow(0)
}

// rebuildRow reconstructs one stripe row: read the row from every surviving
// peer, then write the reconstruction to the replacement, then move on.
func (a *Array) rebuildRow(row uint64) {
	rb := a.rebuild
	if rb == nil {
		return
	}
	if row >= rb.rows {
		a.rebuild = nil
		if rb.done != nil {
			rb.done()
		}
		return
	}
	diskLBA := row * a.cfg.StripeSectors
	remaining := 0
	for peer := range a.disks {
		if peer == rb.disk || a.failed[peer] {
			continue
		}
		remaining++
	}
	if remaining == 0 {
		// Nothing to reconstruct from; abandon (double failure).
		a.rebuild = nil
		return
	}
	reads := remaining
	for peer := range a.disks {
		if peer == rb.disk || a.failed[peer] {
			continue
		}
		a.disks[peer].Submit(diskLBA, uint32(a.cfg.StripeSectors), false, func() {
			reads--
			if reads > 0 {
				return
			}
			a.disks[rb.disk].Submit(diskLBA, uint32(a.cfg.StripeSectors), true, func() {
				rb.watermark = (row + 1) * a.cfg.StripeSectors
				a.rebuildRow(row + 1)
			})
		})
	}
}
