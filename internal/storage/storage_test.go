package storage

import (
	"testing"
	"testing/quick"

	"vscsistats/internal/simclock"
)

func testParams() DiskParams { return DefaultDiskParams(1 << 28) }

func TestDiskSequentialNeedsNoPositioning(t *testing.T) {
	eng := simclock.NewEngine()
	d := NewDisk(eng, testParams(), simclock.NewRand(1))
	// Prime the head at LBA 128.
	d.Submit(0, 128, false, func() {})
	eng.Run()
	seq := d.ServiceTime(128, 16)
	rnd := d.ServiceTime(10_000_000, 16)
	if seq >= rnd {
		t.Errorf("sequential %v should beat random %v", seq, rnd)
	}
	// Sequential = per-op overhead + transfer only.
	want := testParams().PerOpOverhead +
		simclock.Time(16*512*int64(simclock.Second)/testParams().TransferBytesPerSec)
	if seq != want {
		t.Errorf("sequential service = %v, want %v", seq, want)
	}
}

func TestDiskSeekGrowsWithDistance(t *testing.T) {
	eng := simclock.NewEngine()
	// Zero rotation variance distorts nothing: use a fixed rng but compare
	// medians over many samples.
	d := NewDisk(eng, testParams(), simclock.NewRand(2))
	avg := func(lba uint64) simclock.Time {
		var sum simclock.Time
		const n = 200
		for i := 0; i < n; i++ {
			d.head = 0
			sum += d.ServiceTime(lba, 16)
		}
		return sum / n
	}
	near, far := avg(10_000), avg(200_000_000)
	if far <= near {
		t.Errorf("far seek %v should exceed near seek %v", far, near)
	}
}

func TestDiskFIFOAndBusyAccounting(t *testing.T) {
	eng := simclock.NewEngine()
	d := NewDisk(eng, testParams(), simclock.NewRand(3))
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		d.Submit(uint64(i)*1_000_000, 16, false, func() { order = append(order, i) })
	}
	if d.QueueDepth() != 3 {
		t.Errorf("QueueDepth = %d, want 3", d.QueueDepth())
	}
	eng.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("completion order %v", order)
		}
	}
	if d.Served() != 3 || d.QueueDepth() != 0 {
		t.Errorf("Served=%d depth=%d", d.Served(), d.QueueDepth())
	}
	if d.BusyTime() <= 0 || d.BusyTime() > eng.Now() {
		t.Errorf("BusyTime %v out of range (now %v)", d.BusyTime(), eng.Now())
	}
}

func TestDiskValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid params should panic")
		}
	}()
	NewDisk(simclock.NewEngine(), DiskParams{}, simclock.NewRand(1))
}

func TestCacheHitMissLRU(t *testing.T) {
	c := NewCache(3 * cacheLineSectors * 512) // 3 lines
	if c.Lookup(0, 8) {
		t.Fatal("empty cache hit")
	}
	c.Insert(0, 8)
	if !c.Lookup(0, 8) {
		t.Fatal("inserted line missed")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits/misses = %d/%d", c.Hits(), c.Misses())
	}
	// Fill lines 1,2 then 3 evicts line 0's... LRU order: touch 0 last.
	c.Insert(cacheLineSectors, 8)   // line 1
	c.Insert(2*cacheLineSectors, 8) // line 2
	c.Lookup(0, 8)                  // promote line 0
	c.Insert(3*cacheLineSectors, 8) // line 3 evicts line 1 (LRU)
	if c.Contains(cacheLineSectors) {
		t.Error("line 1 should have been evicted")
	}
	if !c.Contains(0) {
		t.Error("promoted line 0 should survive")
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCacheMultiLineExtent(t *testing.T) {
	c := NewCache(10 * cacheLineSectors * 512)
	// A 3-line extent is a hit only when all lines are resident.
	c.Insert(0, 2*cacheLineSectors) // lines 0,1
	if c.Lookup(0, 3*cacheLineSectors) {
		t.Error("partial residency must miss")
	}
	c.Insert(2*cacheLineSectors, cacheLineSectors)
	if !c.Lookup(0, 3*cacheLineSectors) {
		t.Error("full residency must hit")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	if c.Enabled() {
		t.Error("zero-capacity cache should be disabled")
	}
	c.Insert(0, 128)
	if c.Lookup(0, 8) {
		t.Error("disabled cache must always miss")
	}
	if c.Len() != 0 {
		t.Error("disabled cache must stay empty")
	}
}

func TestCacheInsertAhead(t *testing.T) {
	c := NewCache(100 * cacheLineSectors * 512)
	c.Insert(0, cacheLineSectors)
	c.InsertAhead(0, cacheLineSectors, 2) // lines 1 and 2
	if !c.Contains(cacheLineSectors) || !c.Contains(2*cacheLineSectors) {
		t.Error("read-ahead lines missing")
	}
	if c.Contains(3 * cacheLineSectors) {
		t.Error("read-ahead overshot")
	}
	c.InsertAhead(0, cacheLineSectors, 0) // no-op
}

func TestCacheDirtyAccounting(t *testing.T) {
	c := NewCache(10 * cacheLineSectors * 512)
	// Dirty 5 lines; re-dirtying an already dirty line reports 0 new work.
	if n := c.MarkDirty(0, 5*cacheLineSectors); n != 5 {
		t.Fatalf("MarkDirty new lines = %d", n)
	}
	if n := c.MarkDirty(0, cacheLineSectors); n != 0 {
		t.Errorf("re-dirty reported %d new lines", n)
	}
	c.Destaged(0, 2*cacheLineSectors)
	if c.Dirty() != 3 {
		t.Errorf("Dirty = %d", c.Dirty())
	}
	c.Destaged(0, 10*cacheLineSectors) // idempotent over-clean
	if c.Dirty() != 0 {
		t.Errorf("Dirty after full destage = %d", c.Dirty())
	}
}

func TestMapExtentRAID0(t *testing.T) {
	eng := simclock.NewEngine()
	a := NewArray(eng, ArrayConfig{
		Name: "t", Level: RAID0, Disks: 4,
		DiskParams: testParams(), StripeSectors: 128, Seed: 1,
	})
	// 256 sectors starting at 64: chunks [64,128)@d0, [0,128)@d1, [0,64)@d2.
	chunks := a.mapExtent(64, 256)
	want := []chunk{
		{disk: 0, diskLBA: 64, sectors: 64, parity: -1},
		{disk: 1, diskLBA: 0, sectors: 128, parity: -1},
		{disk: 2, diskLBA: 0, sectors: 64, parity: -1},
	}
	if len(chunks) != len(want) {
		t.Fatalf("chunks = %+v", chunks)
	}
	for i := range want {
		if chunks[i] != want[i] {
			t.Fatalf("chunk %d = %+v, want %+v", i, chunks[i], want[i])
		}
	}
	// Wrap to the second stripe row on disk 0.
	chunks = a.mapExtent(512, 128)
	if chunks[0].disk != 0 || chunks[0].diskLBA != 128 {
		t.Errorf("row wrap: %+v", chunks[0])
	}
}

func TestMapExtentRAID5SkipsParityDisk(t *testing.T) {
	eng := simclock.NewEngine()
	a := NewArray(eng, ArrayConfig{
		Name: "t", Level: RAID5, Disks: 4,
		DiskParams: testParams(), StripeSectors: 128, Seed: 1,
	})
	// Row 0: parity on disk 0, data on 1,2,3.
	for i, wantDisk := range []int{1, 2, 3} {
		c := a.mapExtent(uint64(i)*128, 128)[0]
		if c.disk != wantDisk || c.parity != 0 {
			t.Errorf("stripe %d -> disk %d parity %d, want disk %d parity 0",
				i, c.disk, c.parity, wantDisk)
		}
	}
	// Row 1: parity on disk 1.
	c := a.mapExtent(3*128, 128)[0]
	if c.parity != 1 || c.disk == 1 {
		t.Errorf("row 1 chunk: %+v", c)
	}
}

// Property: RAID0 extent mapping conserves sectors and never exceeds the
// stripe unit per chunk.
func TestMapExtentConservesSectors(t *testing.T) {
	eng := simclock.NewEngine()
	a := NewArray(eng, ArrayConfig{
		Name: "t", Level: RAID0, Disks: 5,
		DiskParams: testParams(), StripeSectors: 128, Seed: 1,
	})
	f := func(lba uint32, sectors uint16) bool {
		s := uint32(sectors%2048) + 1
		chunks := a.mapExtent(uint64(lba), s)
		var sum uint32
		for _, c := range chunks {
			if c.sectors == 0 || c.sectors > 128 || c.disk < 0 || c.disk >= 5 {
				return false
			}
			sum += c.sectors
		}
		return sum == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestArrayReadMissThenHit(t *testing.T) {
	eng := simclock.NewEngine()
	a := NewArray(eng, CX3Config(1))
	var first, second simclock.Time
	start := eng.Now()
	a.Read(0, 16, func(ok bool) {
		if !ok {
			t.Error("read failed")
		}
		first = eng.Now() - start
		mid := eng.Now()
		a.Read(0, 16, func(ok bool) { second = eng.Now() - mid })
	})
	eng.Run()
	if first == 0 || second == 0 {
		t.Fatal("reads did not complete")
	}
	if second >= first {
		t.Errorf("cache hit %v should beat miss %v", second, first)
	}
	if a.Cache().Hits() != 1 || a.Cache().Misses() != 1 {
		t.Errorf("cache hits/misses = %d/%d", a.Cache().Hits(), a.Cache().Misses())
	}
	if a.Reads() != 2 {
		t.Errorf("Reads = %d", a.Reads())
	}
}

func TestArrayNoCacheAlwaysMisses(t *testing.T) {
	eng := simclock.NewEngine()
	a := NewArray(eng, CX3NoCacheConfig(1))
	times := make([]simclock.Time, 0, 2)
	var t0 simclock.Time
	a.Read(0, 16, func(bool) {
		times = append(times, eng.Now()-t0)
		t0 = eng.Now()
		a.Read(0, 16, func(bool) { times = append(times, eng.Now()-t0) })
	})
	eng.Run()
	// Second read re-reads the same LBA: head is just past it, so it pays
	// a rotation. Both must exceed the pure cache-hit time scale.
	for i, d := range times {
		if d < 200*simclock.Microsecond {
			t.Errorf("read %d = %v suspiciously fast with cache off", i, d)
		}
	}
}

func TestArrayWriteBackAbsorbsThenSaturates(t *testing.T) {
	eng := simclock.NewEngine()
	cfg := CX3Config(1)
	cfg.WriteBackBytes = 2 * cacheLineSectors * 512 // 2 lines only
	a := NewArray(eng, cfg)
	var lat []simclock.Time
	issue := func(lba uint64) {
		t0 := eng.Now()
		a.Write(lba, 128, func(ok bool) { lat = append(lat, eng.Now()-t0) })
	}
	// Two absorbed writes, then a third while the cache is full.
	issue(0)
	issue(10 * cacheLineSectors)
	issue(20 * cacheLineSectors)
	eng.Run()
	if len(lat) != 3 {
		t.Fatal("writes missing")
	}
	if lat[0] > simclock.Millisecond || lat[1] > simclock.Millisecond {
		t.Errorf("absorbed writes too slow: %v", lat[:2])
	}
	if lat[2] < lat[0] {
		t.Errorf("saturated write %v should be slower than absorbed %v", lat[2], lat[0])
	}
	if a.Writes() != 3 {
		t.Errorf("Writes = %d", a.Writes())
	}
}

func TestArraySequentialPrefetchTurnsMissesIntoHits(t *testing.T) {
	eng := simclock.NewEngine()
	a := NewArray(eng, CX3Config(1))
	hits0 := a.Cache().Hits()
	// Read 16 consecutive 64 KB lines; after the first two misses the
	// read-ahead should cover most of the rest.
	var next func(i int)
	next = func(i int) {
		if i == 16 {
			return
		}
		a.Read(uint64(i)*cacheLineSectors, cacheLineSectors, func(bool) { next(i + 1) })
	}
	next(0)
	eng.Run()
	hits := a.Cache().Hits() - hits0
	if hits < 10 {
		t.Errorf("sequential stream got only %d/16 hits", hits)
	}
}

func TestArrayErrorInjection(t *testing.T) {
	eng := simclock.NewEngine()
	cfg := LocalDiskConfig(1)
	cfg.ReadErrorRate = 1.0
	cfg.WriteErrorRate = 1.0
	a := NewArray(eng, cfg)
	var readOK, writeOK *bool
	a.Read(0, 8, func(ok bool) { readOK = &ok })
	a.Write(0, 8, func(ok bool) { writeOK = &ok })
	eng.Run()
	if readOK == nil || *readOK {
		t.Error("read should have failed")
	}
	if writeOK == nil || *writeOK {
		t.Error("write should have failed")
	}
	if a.ReadErrors() != 1 || a.WriteErrors() != 1 {
		t.Errorf("error counters: %d/%d", a.ReadErrors(), a.WriteErrors())
	}
}

func TestArrayFlush(t *testing.T) {
	eng := simclock.NewEngine()
	a := NewArray(eng, CX3Config(1))
	flushed := false
	a.Flush(func() { flushed = true })
	eng.Run()
	if !flushed {
		t.Error("flush never completed")
	}
}

func TestArrayValidation(t *testing.T) {
	eng := simclock.NewEngine()
	bad := []ArrayConfig{
		{Level: RAID0, Disks: 0, DiskParams: testParams(), StripeSectors: 128},
		{Level: RAID5, Disks: 2, DiskParams: testParams(), StripeSectors: 128},
		{Level: RAID0, Disks: 2, DiskParams: testParams(), StripeSectors: 0},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d should panic", i)
				}
			}()
			NewArray(eng, cfg)
		}()
	}
	a := NewArray(eng, LocalDiskConfig(1))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range extent should panic")
			}
		}()
		a.Read(a.CapacitySectors(), 8, func(bool) {})
	}()
}

func TestArrayCapacityRAID5ExcludesParity(t *testing.T) {
	eng := simclock.NewEngine()
	r0 := NewArray(eng, ArrayConfig{Name: "r0", Level: RAID0, Disks: 4,
		DiskParams: testParams(), StripeSectors: 128, Seed: 1})
	r5 := NewArray(eng, ArrayConfig{Name: "r5", Level: RAID5, Disks: 4,
		DiskParams: testParams(), StripeSectors: 128, Seed: 1})
	if r5.CapacitySectors() != r0.CapacitySectors()/4*3 {
		t.Errorf("RAID5 capacity %d vs RAID0 %d", r5.CapacitySectors(), r0.CapacitySectors())
	}
}

func TestDiskUtilization(t *testing.T) {
	eng := simclock.NewEngine()
	a := NewArray(eng, LocalDiskConfig(1))
	if u := a.DiskUtilization(); u[0] != 0 {
		t.Errorf("idle utilization = %v", u)
	}
	a.Read(0, 128, func(bool) {})
	eng.Run()
	u := a.DiskUtilization()
	if u[0] <= 0 || u[0] > 1 {
		t.Errorf("utilization = %v", u)
	}
}

func TestArrayLinkTimeScalesWithSize(t *testing.T) {
	eng := simclock.NewEngine()
	a := NewArray(eng, SymmetrixConfig(1))
	var small, large simclock.Time
	t0 := eng.Now()
	a.Read(0, 16, func(bool) { small = eng.Now() - t0 })
	eng.Run()
	// Second read of the same extent hits cache; a 1 MB cached read must
	// still take longer than an 8 KB cached read because of the wire.
	t1 := eng.Now()
	a.Read(0, 16, func(bool) { small = eng.Now() - t1 })
	eng.Run()
	a.Read(1<<20, 2048, func(bool) {})
	eng.Run()
	t2 := eng.Now()
	a.Read(1<<20, 2048, func(bool) { large = eng.Now() - t2 })
	eng.Run()
	if large <= small {
		t.Errorf("cached 1MB read %v should exceed cached 8K read %v", large, small)
	}
	if large < 2*simclock.Millisecond {
		t.Errorf("1MB at ~400MB/s should be >= 2.5ms, got %v", large)
	}
}
