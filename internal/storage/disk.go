// Package storage models the physical storage subsystem beneath the
// hypervisor: disk mechanics (seek, rotation, transfer), an array-level
// read/write cache, and striped arrays in the spirit of the paper's EMC
// Symmetrix and CLARiiON CX3 testbeds (Table 1, §5.3).
//
// The models are deliberately behavioural rather than geometric: they need
// to reproduce the *relative* phenomena the paper's evaluation rests on —
// sequential streams are fast until another client displaces the head,
// caches hide interference until they are too small or turned off, deeper
// queues mean proportionally longer latencies — not any particular device's
// datasheet.
package storage

import (
	"math"
	"math/rand"

	"vscsistats/internal/simclock"
)

// DiskParams describes one spindle's mechanics.
type DiskParams struct {
	// CapacitySectors is the usable size in 512-byte sectors.
	CapacitySectors uint64
	// SectorsPerCylinder converts LBA distance to cylinder distance for
	// the seek curve.
	SectorsPerCylinder uint64
	// SeekBase is the minimum non-zero seek time (head settle).
	SeekBase simclock.Time
	// SeekMax is the full-stroke seek time; partial seeks follow the
	// classic a + b*sqrt(d) curve between SeekBase and SeekMax.
	SeekMax simclock.Time
	// RotationPeriod is one revolution (e.g. 6ms at 10k RPM). Average
	// rotational latency is half of it.
	RotationPeriod simclock.Time
	// TransferBytesPerSec is the media transfer rate.
	TransferBytesPerSec int64
	// PerOpOverhead covers controller command processing per operation.
	PerOpOverhead simclock.Time
}

// DefaultDiskParams models a mid-2000s 10k RPM FC drive, the class of
// spindle behind the paper's arrays.
func DefaultDiskParams(capacitySectors uint64) DiskParams {
	return DiskParams{
		CapacitySectors:     capacitySectors,
		SectorsPerCylinder:  2048, // 1 MB cylinders
		SeekBase:            800 * simclock.Microsecond,
		SeekMax:             8 * simclock.Millisecond,
		RotationPeriod:      6 * simclock.Millisecond,
		TransferBytesPerSec: 80 << 20,
		PerOpOverhead:       50 * simclock.Microsecond,
	}
}

// diskOp is one physical transfer queued at a spindle.
type diskOp struct {
	lba     uint64
	sectors uint32
	write   bool
	done    func()
}

// Disk is a single spindle with a head position and a two-class queue:
// reads are served FIFO ahead of writes (the universal array policy — a
// host is waiting on reads, while writes are destage traffic), and writes
// are served shortest-seek-first so lazy destage does not thrash the arm.
// A starvation guard services one write after every few reads. The head is
// shared state across everything issuing to the disk — this is what makes
// two colocated workloads interfere (§5.3): a random stream drags the head
// away between a sequential stream's consecutive requests.
type Disk struct {
	p          DiskParams
	eng        *simclock.Engine
	rng        *rand.Rand
	reads      []diskOp
	writes     []diskOp
	readCredit int
	busy       bool
	head       uint64 // LBA the head sits after the last transfer
	served     uint64

	busyTime simclock.Time // total time spent servicing ops
}

// readsPerWrite is the starvation guard: after this many consecutive reads
// with writes pending, one write is served.
const readsPerWrite = 4

// sstfScanLimit bounds the shortest-seek-first scan so a deep destage
// backlog cannot turn scheduling quadratic.
const sstfScanLimit = 64

// NewDisk creates an idle disk with the head at LBA 0.
func NewDisk(eng *simclock.Engine, p DiskParams, rng *rand.Rand) *Disk {
	if p.CapacitySectors == 0 || p.SectorsPerCylinder == 0 ||
		p.TransferBytesPerSec <= 0 || p.RotationPeriod <= 0 {
		panic("storage: invalid disk parameters")
	}
	return &Disk{p: p, eng: eng, rng: rng}
}

// Served returns the number of completed operations.
func (d *Disk) Served() uint64 { return d.served }

// QueueDepth returns the number of queued-plus-active operations.
func (d *Disk) QueueDepth() int {
	n := len(d.reads) + len(d.writes)
	if d.busy {
		n++
	}
	return n
}

// BusyTime returns cumulative service time, for utilization accounting.
func (d *Disk) BusyTime() simclock.Time { return d.busyTime }

// Submit queues a transfer of sectors at lba; done fires at completion.
func (d *Disk) Submit(lba uint64, sectors uint32, write bool, done func()) {
	op := diskOp{lba, sectors, write, done}
	if write {
		d.writes = append(d.writes, op)
	} else {
		d.reads = append(d.reads, op)
	}
	if !d.busy {
		d.startNext()
	}
}

// pickNext dequeues the next operation per the scheduling policy.
func (d *Disk) pickNext() (diskOp, bool) {
	serveRead := len(d.reads) > 0 &&
		(len(d.writes) == 0 || d.readCredit < readsPerWrite)
	if serveRead {
		op := d.reads[0]
		d.reads = d.reads[1:]
		d.readCredit++
		return op, true
	}
	if len(d.writes) == 0 {
		return diskOp{}, false
	}
	d.readCredit = 0
	// Shortest seek first among the first sstfScanLimit pending writes.
	best, bestDist := 0, int64(-1)
	for i, op := range d.writes {
		if i == sstfScanLimit {
			break
		}
		dist := abs(int64(op.lba) - int64(d.head))
		if bestDist < 0 || dist < bestDist {
			best, bestDist = i, dist
		}
	}
	op := d.writes[best]
	d.writes = append(d.writes[:best], d.writes[best+1:]...)
	return op, true
}

func (d *Disk) startNext() {
	op, ok := d.pickNext()
	if !ok {
		d.busy = false
		return
	}
	d.busy = true
	svc := d.ServiceTime(op.lba, op.sectors)
	d.busyTime += svc
	d.head = op.lba + uint64(op.sectors)
	d.eng.After(svc, func(simclock.Time) {
		d.served++
		op.done()
		d.startNext()
	})
}

// ServiceTime computes the mechanical time for a transfer starting at lba
// given the current head position: positioning (seek + rotation) plus media
// transfer. A transfer contiguous with the head needs no positioning at all
// — that asymmetry is the whole reason sequential workloads win.
func (d *Disk) ServiceTime(lba uint64, sectors uint32) simclock.Time {
	t := d.p.PerOpOverhead
	dist := int64(lba) - int64(d.head)
	if dist != 0 {
		cyl := uint64(abs(dist)) / d.p.SectorsPerCylinder
		if cyl > 0 {
			totalCyl := d.p.CapacitySectors / d.p.SectorsPerCylinder
			frac := math.Sqrt(float64(cyl) / float64(totalCyl))
			t += d.p.SeekBase + simclock.Time(float64(d.p.SeekMax-d.p.SeekBase)*frac)
		} else {
			// Same cylinder, different sector: settle only.
			t += d.p.SeekBase / 2
		}
		// Rotational latency: uniform over a revolution.
		t += simclock.Time(d.rng.Int63n(int64(d.p.RotationPeriod)))
	}
	bytes := int64(sectors) * 512
	t += simclock.Time(bytes * int64(simclock.Second) / d.p.TransferBytesPerSec)
	return t
}

func abs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
