package storage

import "vscsistats/internal/simclock"

// Presets modeled on the paper's Table 1 and §5.3 testbeds. Absolute
// figures are representative of the device class, not calibrated to the
// originals; the experiments depend on the *relationships* between presets
// (huge cache vs small cache vs no cache).

// SymmetrixConfig models the reference array: "EMC Symmetrix 500GB RAID-5"
// behind a 4 Gb SAN, with the "very large cache" that §5.3 credits for
// hiding multi-VM interference.
func SymmetrixConfig(seed int64) ArrayConfig {
	return ArrayConfig{
		Name:           "EMC Symmetrix (RAID-5)",
		Level:          RAID5,
		Disks:          9,                            // 8 data + rotating parity
		DiskParams:     DefaultDiskParams(150 << 21), // ~150 GB per spindle in sectors
		StripeSectors:  128,                          // 64 KB chunks
		ReadCacheBytes: 16 << 30,
		ReadAheadLines: 8,
		WriteBackBytes: 8 << 30,
		TransportDelay: 120 * simclock.Microsecond,
		Seed:           seed,
	}
}

// CX3Config models the "lower cost EMC CLARiiON CX3 RAID-0 with an active
// read cache (2.5GB) much smaller than our workload" (§5.3).
func CX3Config(seed int64) ArrayConfig {
	return ArrayConfig{
		Name:           "EMC CLARiiON CX3 (RAID-0)",
		Level:          RAID0,
		Disks:          8,
		DiskParams:     DefaultDiskParams(150 << 21),
		StripeSectors:  128,
		ReadCacheBytes: 5 << 29, // 2.5 GB
		ReadAheadLines: 8,
		WriteBackBytes: 1 << 30,
		TransportDelay: 150 * simclock.Microsecond,
		Seed:           seed,
	}
}

// CX3NoCacheConfig is the CX3 with its read cache turned off, "forcing all
// I/Os to hit the disk" — the paper's extreme worst case for Figure 6.
// Write-back absorption is disabled too so writes also reach the spindles.
func CX3NoCacheConfig(seed int64) ArrayConfig {
	cfg := CX3Config(seed)
	cfg.Name = "EMC CLARiiON CX3 (RAID-0, cache off)"
	cfg.ReadCacheBytes = 0
	cfg.ReadAheadLines = 0
	cfg.WriteBackBytes = 0
	return cfg
}

// LocalDiskConfig models a single direct-attached spindle with no array
// cache: the simplest possible substrate, useful in examples and tests.
func LocalDiskConfig(seed int64) ArrayConfig {
	return ArrayConfig{
		Name:          "local disk",
		Level:         RAID0,
		Disks:         1,
		DiskParams:    DefaultDiskParams(150 << 21),
		StripeSectors: 128,
		Seed:          seed,
	}
}
