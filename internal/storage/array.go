package storage

import (
	"fmt"
	"math/rand"

	"vscsistats/internal/simclock"
)

// RAIDLevel selects the array's striping scheme.
type RAIDLevel int

// Supported levels. RAID5 reserves one rotating parity chunk per stripe row
// and charges writes a parity update on a second spindle.
const (
	RAID0 RAIDLevel = iota
	RAID5
)

// ArrayConfig describes a storage array.
type ArrayConfig struct {
	Name  string
	Level RAIDLevel
	// Disks is the number of spindles; RAID5 needs at least 3.
	Disks int
	// DiskParams configures each spindle.
	DiskParams DiskParams
	// StripeSectors is the stripe unit (chunk) size in sectors.
	StripeSectors uint64
	// ReadCacheBytes sizes the LRU read cache; 0 disables it (§5.3's
	// "turn off the CX3 read cache forcing all I/Os to hit the disk").
	ReadCacheBytes int64
	// ReadAheadLines is the number of 64 KB lines prefetched when a miss
	// extends a resident sequential run.
	ReadAheadLines int
	// WriteBackBytes sizes write-back absorption; 0 means write-through.
	WriteBackBytes int64
	// TransportDelay is the per-command fabric plus controller time.
	TransportDelay simclock.Time
	// LinkBytesPerSec is the host-array link bandwidth (4 Gb FC by
	// default); every command pays its transfer time on the wire, which is
	// why a 1 MB I/O has higher latency than a 64 KB one even on a cache
	// hit (Figure 5(a)).
	LinkBytesPerSec int64
	// CacheHitTime is the extra service time for a read satisfied from
	// cache; CacheWriteTime likewise for an absorbed write.
	CacheHitTime   simclock.Time
	CacheWriteTime simclock.Time
	// ReadErrorRate / WriteErrorRate inject media failures with the given
	// per-command probability (failure-injection testing; zero in the
	// paper's experiments).
	ReadErrorRate  float64
	WriteErrorRate float64
	// Seed drives the array's rotational-latency and fault randomness.
	Seed int64
}

// Array is a striped disk array with a shared cache, implementing the
// physical half of the paper's testbed. All methods must run on the
// simulation engine's event loop.
type Array struct {
	cfg   ArrayConfig
	eng   *simclock.Engine
	disks []*Disk
	cache *Cache
	rng   *rand.Rand

	wbLimitLines int

	failed           []bool
	rebuild          *rebuildState
	reads, writes    uint64
	readErrs, wrErrs uint64
	degradedOps      uint64
}

// NewArray builds an array; it panics on nonsensical configuration since
// arrays are constructed from code-reviewed presets.
func NewArray(eng *simclock.Engine, cfg ArrayConfig) *Array {
	if cfg.Disks <= 0 {
		panic("storage: array needs at least one disk")
	}
	if cfg.Level == RAID5 && cfg.Disks < 3 {
		panic("storage: RAID5 needs at least three disks")
	}
	if cfg.StripeSectors == 0 {
		panic("storage: stripe unit must be nonzero")
	}
	if cfg.TransportDelay <= 0 {
		cfg.TransportDelay = 100 * simclock.Microsecond
	}
	if cfg.CacheHitTime <= 0 {
		cfg.CacheHitTime = 100 * simclock.Microsecond
	}
	if cfg.CacheWriteTime <= 0 {
		cfg.CacheWriteTime = 80 * simclock.Microsecond
	}
	if cfg.LinkBytesPerSec <= 0 {
		cfg.LinkBytesPerSec = 400 << 20 // ~4 Gb/s Fibre Channel
	}
	a := &Array{
		cfg:          cfg,
		eng:          eng,
		cache:        NewCache(cfg.ReadCacheBytes),
		rng:          simclock.NewRand(cfg.Seed),
		wbLimitLines: int(cfg.WriteBackBytes / (cacheLineSectors * 512)),
	}
	for i := 0; i < cfg.Disks; i++ {
		a.disks = append(a.disks, NewDisk(eng, cfg.DiskParams, simclock.NewRand(cfg.Seed+int64(i)+1)))
	}
	a.failed = make([]bool, cfg.Disks)
	return a
}

// Name returns the configured array name.
func (a *Array) Name() string { return a.cfg.Name }

// CapacitySectors is the usable (data) capacity across all spindles.
func (a *Array) CapacitySectors() uint64 {
	dataDisks := uint64(a.cfg.Disks)
	if a.cfg.Level == RAID5 {
		dataDisks--
	}
	return dataDisks * a.cfg.DiskParams.CapacitySectors
}

// Cache exposes the read cache for accounting.
func (a *Array) Cache() *Cache { return a.cache }

// Reads and Writes report completed I/O counts; ReadErrors/WriteErrors the
// injected failures.
func (a *Array) Reads() uint64       { return a.reads }
func (a *Array) Writes() uint64      { return a.writes }
func (a *Array) ReadErrors() uint64  { return a.readErrs }
func (a *Array) WriteErrors() uint64 { return a.wrErrs }

// DiskUtilization returns each spindle's busy fraction of elapsed time.
func (a *Array) DiskUtilization() []float64 {
	out := make([]float64, len(a.disks))
	now := a.eng.Now()
	if now == 0 {
		return out
	}
	for i, d := range a.disks {
		out[i] = float64(d.BusyTime()) / float64(now)
	}
	return out
}

// chunk is a piece of an array extent mapped onto one spindle.
type chunk struct {
	disk    int
	diskLBA uint64
	sectors uint32
	parity  int // RAID5 parity spindle for this chunk's row, else -1
}

// mapExtent splits [lba, lba+sectors) into per-spindle chunks.
func (a *Array) mapExtent(lba uint64, sectors uint32) []chunk {
	var chunks []chunk
	end := lba + uint64(sectors)
	for cur := lba; cur < end; {
		stripeIdx := cur / a.cfg.StripeSectors
		off := cur % a.cfg.StripeSectors
		n := a.cfg.StripeSectors - off
		if cur+n > end {
			n = end - cur
		}
		c := chunk{sectors: uint32(n), parity: -1}
		switch a.cfg.Level {
		case RAID0:
			c.disk = int(stripeIdx % uint64(a.cfg.Disks))
			c.diskLBA = (stripeIdx/uint64(a.cfg.Disks))*a.cfg.StripeSectors + off
		case RAID5:
			dataDisks := uint64(a.cfg.Disks - 1)
			row := stripeIdx / dataDisks
			col := int(stripeIdx % dataDisks)
			parity := int(row % uint64(a.cfg.Disks))
			disk := col
			if disk >= parity {
				disk++
			}
			c.disk = disk
			c.diskLBA = row*a.cfg.StripeSectors + off
			c.parity = parity
		}
		chunks = append(chunks, c)
		cur += n
	}
	return chunks
}

// Read services an array read of sectors at lba, invoking done(ok) when the
// data is available. It must be called on the engine's event loop.
func (a *Array) Read(lba uint64, sectors uint32, done func(ok bool)) {
	a.validate(lba, sectors)
	a.eng.After(a.cfg.TransportDelay+a.linkTime(sectors), func(simclock.Time) {
		if a.cfg.ReadErrorRate > 0 && a.rng.Float64() < a.cfg.ReadErrorRate {
			a.readErrs++
			done(false)
			return
		}
		if a.cache.Lookup(lba, sectors) {
			// Keep the read-ahead window rolling on hits too, or a
			// sequential stream stalls at the end of each prefetched run.
			if lba >= cacheLineSectors && a.cache.Contains(lba-1) {
				a.cache.InsertAhead(lba, sectors, a.cfg.ReadAheadLines)
			}
			a.eng.After(a.cfg.CacheHitTime, func(simclock.Time) {
				a.reads++
				done(true)
			})
			return
		}
		// Sequential detection before the fill perturbs residency: does
		// the line preceding this extent sit in cache?
		sequential := lba >= cacheLineSectors && a.cache.Contains(lba-1)
		a.fanOut(lba, sectors, false, func(ok bool) {
			if !ok {
				a.readErrs++
				done(false)
				return
			}
			a.cache.Insert(lba, sectors)
			if sequential {
				a.cache.InsertAhead(lba, sectors, a.cfg.ReadAheadLines)
			}
			a.reads++
			done(true)
		})
	})
}

// Write services an array write, invoking done(ok) when the guest may
// consider it durable (cache absorption counts, as on a battery-backed
// array).
func (a *Array) Write(lba uint64, sectors uint32, done func(ok bool)) {
	a.validate(lba, sectors)
	a.eng.After(a.cfg.TransportDelay+a.linkTime(sectors), func(simclock.Time) {
		if a.cfg.WriteErrorRate > 0 && a.rng.Float64() < a.cfg.WriteErrorRate {
			a.wrErrs++
			done(false)
			return
		}
		a.cache.Insert(lba, sectors) // written data is readable from cache
		if a.wbLimitLines > 0 && a.cache.Dirty() < a.wbLimitLines {
			// Absorbed by the write-back cache; destage asynchronously,
			// but only for newly dirtied lines — overwrites of a dirty
			// line fold into the pending destage.
			if newLines := a.cache.MarkDirty(lba, sectors); newLines > 0 {
				a.fanOut(lba, sectors, true, func(bool) { a.cache.Destaged(lba, sectors) })
			}
			a.eng.After(a.cfg.CacheWriteTime, func(simclock.Time) {
				a.writes++
				done(true)
			})
			return
		}
		// Write-through: wait for the spindles (and parity).
		a.fanOut(lba, sectors, true, func(ok bool) {
			if !ok {
				a.wrErrs++
				done(false)
				return
			}
			a.writes++
			done(true)
		})
	})
}

// linkTime is the wire-transfer time for an extent.
func (a *Array) linkTime(sectors uint32) simclock.Time {
	return simclock.Time(int64(sectors) * 512 * int64(simclock.Second) / a.cfg.LinkBytesPerSec)
}

// Flush models SYNCHRONIZE CACHE: it completes once the currently dirty
// write-back lines have destaged (approximated by a per-line charge).
func (a *Array) Flush(done func()) {
	d := simclock.Time(a.cache.Dirty()) * 20 * simclock.Microsecond
	a.eng.After(a.cfg.TransportDelay+d, func(simclock.Time) { done() })
}

// fanOut issues the extent's chunks to their spindles and calls done(ok)
// when every chunk (and for RAID5 writes, every parity update) completes.
// Chunks on a failed spindle follow the degraded paths: RAID5 reads
// reconstruct from every surviving peer, RAID5 writes fall back to the
// parity (or data) update alone, and RAID0 ops fail outright.
func (a *Array) fanOut(lba uint64, sectors uint32, write bool, done func(ok bool)) {
	chunks := a.mapExtent(lba, sectors)
	remaining := 1 // sentinel released after submission
	okAll := true
	complete := func(ok bool) {
		if !ok {
			okAll = false
		}
		remaining--
		if remaining == 0 {
			done(okAll)
		}
	}
	submit := func(disk int, diskLBA uint64, sectors uint32, w bool) {
		remaining++
		a.disks[disk].Submit(diskLBA, sectors, w, func() { complete(true) })
	}
	for _, c := range chunks {
		diskDown := a.diskUnavailable(c.disk, c.diskLBA)
		parityDown := c.parity >= 0 && a.diskUnavailable(c.parity, c.diskLBA)
		switch {
		case !diskDown:
			submit(c.disk, c.diskLBA, c.sectors, write)
			if write && c.parity >= 0 && !parityDown {
				submit(c.parity, c.diskLBA, c.sectors, true)
			}
		case c.parity < 0:
			// RAID0: the data is simply gone.
			remaining++
			a.eng.After(a.cfg.TransportDelay, func(simclock.Time) { complete(false) })
		case write:
			// Degraded RAID5 write: the data lives only in parity now.
			a.degradedOps++
			if !parityDown {
				submit(c.parity, c.diskLBA, c.sectors, true)
			} else {
				remaining++
				a.eng.After(a.cfg.TransportDelay, func(simclock.Time) { complete(false) })
			}
		default:
			// Degraded RAID5 read: reconstruct from every surviving peer.
			a.degradedOps++
			survivors := 0
			for peer := range a.disks {
				if peer != c.disk && !a.failed[peer] {
					survivors++
					submit(peer, c.diskLBA, c.sectors, false)
				}
			}
			if survivors < a.cfg.Disks-1 {
				// Two failures: unrecoverable.
				remaining++
				a.eng.After(a.cfg.TransportDelay, func(simclock.Time) { complete(false) })
			}
		}
	}
	complete(true) // release the sentinel
}

// diskUnavailable reports whether the spindle cannot serve the row: failed,
// or still awaiting rebuild above the watermark.
func (a *Array) diskUnavailable(disk int, diskLBA uint64) bool {
	if a.failed[disk] {
		return true
	}
	if a.rebuild != nil && a.rebuild.disk == disk && diskLBA >= a.rebuild.watermark {
		return true
	}
	return false
}

func (a *Array) validate(lba uint64, sectors uint32) {
	if sectors == 0 || lba+uint64(sectors) > a.CapacitySectors() {
		panic(fmt.Sprintf("storage: extent [%d,+%d) outside array %q (capacity %d); the LUN layer must bounds-check",
			lba, sectors, a.cfg.Name, a.CapacitySectors()))
	}
}
