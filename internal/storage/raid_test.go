package storage

import (
	"testing"

	"vscsistats/internal/simclock"
)

// smallRAID5 builds a tiny RAID5 array so rebuilds finish quickly.
func smallRAID5(t *testing.T) (*simclock.Engine, *Array) {
	t.Helper()
	eng := simclock.NewEngine()
	p := DefaultDiskParams(16 << 10) // 16K sectors per spindle
	a := NewArray(eng, ArrayConfig{
		Name: "r5", Level: RAID5, Disks: 4, DiskParams: p,
		StripeSectors: 128, Seed: 1,
	})
	return eng, a
}

func TestRAID5DegradedReadReconstructs(t *testing.T) {
	eng, a := smallRAID5(t)
	// Stripe 0 lives on disk 1 (parity on 0).
	a.FailDisk(1)
	if !a.Degraded() {
		t.Fatal("array should be degraded")
	}
	ok := false
	var before [4]uint64
	for i, d := range a.disks {
		before[i] = d.Served()
	}
	a.Read(0, 128, func(got bool) { ok = got })
	eng.Run()
	if !ok {
		t.Fatal("degraded read failed")
	}
	// The failed disk served nothing; every survivor served one read.
	if a.disks[1].Served() != before[1] {
		t.Error("failed disk serviced I/O")
	}
	for _, peer := range []int{0, 2, 3} {
		if a.disks[peer].Served() != before[peer]+1 {
			t.Errorf("peer %d served %d, want %d", peer, a.disks[peer].Served(), before[peer]+1)
		}
	}
	if a.DegradedOps() != 1 {
		t.Errorf("DegradedOps = %d", a.DegradedOps())
	}
}

func TestRAID5DegradedWriteUsesParity(t *testing.T) {
	eng, a := smallRAID5(t)
	a.FailDisk(1)
	ok := false
	a.Write(0, 128, func(got bool) { ok = got })
	eng.Run()
	if !ok {
		t.Fatal("degraded write failed")
	}
	// Parity disk (0) carried the write; survivors 2,3 untouched.
	if a.disks[0].Served() != 1 || a.disks[2].Served() != 0 {
		t.Errorf("served: %d %d %d %d", a.disks[0].Served(), a.disks[1].Served(),
			a.disks[2].Served(), a.disks[3].Served())
	}
}

func TestRAID5DoubleFailureUnrecoverable(t *testing.T) {
	eng, a := smallRAID5(t)
	a.FailDisk(1)
	a.FailDisk(2)
	got := true
	a.Read(0, 128, func(ok bool) { got = ok })
	eng.Run()
	if got {
		t.Fatal("double failure should fail reads of lost stripes")
	}
	if a.ReadErrors() == 0 {
		t.Error("read error not accounted")
	}
}

func TestRAID0FailureLosesData(t *testing.T) {
	eng := simclock.NewEngine()
	a := NewArray(eng, ArrayConfig{Name: "r0", Level: RAID0, Disks: 2,
		DiskParams: DefaultDiskParams(16 << 10), StripeSectors: 128, Seed: 1})
	a.FailDisk(0)
	got := true
	a.Read(0, 64, func(ok bool) { got = ok })
	eng.Run()
	if got {
		t.Fatal("RAID0 read of failed disk should fail")
	}
	// Replacement restores service immediately (blank data).
	done := false
	a.ReplaceAndRebuild(0, func() { done = true })
	if !done {
		t.Fatal("RAID0 replace should complete synchronously")
	}
	ok2 := false
	a.Read(0, 64, func(ok bool) { ok2 = ok })
	eng.Run()
	if !ok2 {
		t.Error("replaced RAID0 disk should serve")
	}
}

func TestRAID5RebuildRestoresArray(t *testing.T) {
	eng, a := smallRAID5(t)
	a.FailDisk(1)
	rebuilt := false
	a.ReplaceAndRebuild(1, func() { rebuilt = true })
	if a.RebuildProgress() >= 1 {
		t.Fatal("rebuild should be in progress")
	}
	eng.Run()
	if !rebuilt {
		t.Fatal("rebuild never completed")
	}
	if a.Degraded() || a.RebuildProgress() != 1 {
		t.Errorf("post-rebuild state: degraded=%v progress=%v", a.Degraded(), a.RebuildProgress())
	}
	// The array serves normally again: stripe 0 read touches only disk 1.
	for _, d := range a.disks {
		_ = d.Served()
	}
	before := a.disks[1].Served()
	ok := false
	a.Read(0, 128, func(got bool) { ok = got })
	eng.Run()
	if !ok || a.disks[1].Served() != before+1 {
		t.Error("rebuilt disk not serving directly")
	}
}

func TestRAID5RebuildWatermarkServesRebuiltRows(t *testing.T) {
	eng, a := smallRAID5(t)
	a.FailDisk(1)
	a.ReplaceAndRebuild(1, nil)
	// Let a few rows rebuild, then stop the engine mid-rebuild.
	eng.RunUntil(20 * simclock.Millisecond)
	progress := a.RebuildProgress()
	if progress <= 0 || progress >= 1 {
		t.Fatalf("mid-rebuild progress = %v", progress)
	}
	// A read below the watermark goes straight to the rebuilt spindle; one
	// above reconstructs from peers (degraded count increases).
	before := a.DegradedOps()
	okLow := false
	a.Read(0, 128, func(ok bool) { okLow = ok }) // row 0: rebuilt first
	// Find the stripe mapped to disk 1's very last row.
	var lateLBA uint64
	for lba := uint64(0); lba+128 <= a.CapacitySectors(); lba += a.cfg.StripeSectors {
		c := a.mapExtent(lba, 128)[0]
		if c.disk == 1 {
			lateLBA = lba
		}
	}
	okHigh := false
	a.Read(lateLBA, 128, func(ok bool) { okHigh = ok })
	eng.Run() // drains the rebuild too
	if !okLow || !okHigh {
		t.Fatalf("reads failed: low=%v high=%v", okLow, okHigh)
	}
	if a.DegradedOps() == before {
		t.Error("above-watermark read should have reconstructed")
	}
}

func TestRebuildValidation(t *testing.T) {
	_, a := smallRAID5(t)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("rebuilding healthy disk should panic")
			}
		}()
		a.ReplaceAndRebuild(0, nil)
	}()
	a.FailDisk(0)
	a.ReplaceAndRebuild(0, nil)
	a.FailDisk(2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("second concurrent rebuild should panic")
			}
		}()
		a.ReplaceAndRebuild(2, nil)
	}()
}

func TestRebuildSlowsForegroundIO(t *testing.T) {
	// Foreground latency during rebuild must exceed the healthy baseline:
	// reconstruction I/O occupies the spindles.
	measure := func(rebuild bool) simclock.Time {
		eng, a := smallRAID5(t)
		if rebuild {
			a.FailDisk(1)
			a.ReplaceAndRebuild(1, nil)
		}
		var total simclock.Time
		const n = 20
		doneCount := 0
		rng := simclock.NewRand(9)
		for i := 0; i < n; i++ {
			i := i
			eng.At(simclock.Time(i)*5*simclock.Millisecond, func(simclock.Time) {
				start := eng.Now()
				lba := uint64(rng.Int63n(int64(a.CapacitySectors()/128))) * 128
				a.Read(lba, 16, func(bool) {
					total += eng.Now() - start
					doneCount++
				})
			})
		}
		eng.RunUntil(simclock.Second)
		if doneCount != n {
			t.Fatalf("completed %d of %d", doneCount, n)
		}
		return total / n
	}
	healthy := measure(false)
	rebuilding := measure(true)
	if rebuilding <= healthy {
		t.Errorf("rebuild should slow foreground I/O: healthy %v, rebuilding %v", healthy, rebuilding)
	}
}
