package storage

import (
	"fmt"

	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

// LUN carves a contiguous extent of an array into a logical unit backing one
// virtual disk, and adapts it to the vscsi.Backend interface. It is the
// "datastore placement" knob: virtual disks placed on overlapping spindles
// interfere, disks on different arrays do not (§3.6, §3.7).
type LUN struct {
	array   *Array
	base    uint64 // array LBA of sector 0
	sectors uint64
}

// NewLUN allocates [base, base+sectors) of the array to a logical unit.
func NewLUN(array *Array, base, sectors uint64) *LUN {
	if sectors == 0 || base+sectors > array.CapacitySectors() {
		panic(fmt.Sprintf("storage: LUN [%d,+%d) exceeds array capacity %d",
			base, sectors, array.CapacitySectors()))
	}
	return &LUN{array: array, base: base, sectors: sectors}
}

// Array returns the backing array.
func (l *LUN) Array() *Array { return l.array }

// CapacitySectors returns the LUN size.
func (l *LUN) CapacitySectors() uint64 { return l.sectors }

var _ vscsi.Backend = (*LUN)(nil)

// Submit implements vscsi.Backend: block reads and writes translate to
// array extents; SYNCHRONIZE CACHE flushes; other commands complete after
// the transport delay (they are emulated control traffic).
func (l *LUN) Submit(r *vscsi.Request, done func(scsi.Status, scsi.Sense)) {
	cmd := r.Cmd
	switch {
	case cmd.Op.IsRead():
		if !l.inRange(cmd) {
			done(scsi.StatusCheckCondition, scsi.SenseLBAOutOfRange)
			return
		}
		l.array.Read(l.base+cmd.LBA, cmd.Blocks, func(ok bool) {
			if ok {
				done(scsi.StatusGood, scsi.Sense{})
			} else {
				done(scsi.StatusCheckCondition, scsi.SenseUnrecoveredRead)
			}
		})
	case cmd.Op.IsWrite():
		if !l.inRange(cmd) {
			done(scsi.StatusCheckCondition, scsi.SenseLBAOutOfRange)
			return
		}
		l.array.Write(l.base+cmd.LBA, cmd.Blocks, func(ok bool) {
			if ok {
				done(scsi.StatusGood, scsi.Sense{})
			} else {
				done(scsi.StatusCheckCondition, scsi.SenseWriteFault)
			}
		})
	case cmd.Op == scsi.OpSynchronizeCache10:
		l.array.Flush(func() { done(scsi.StatusGood, scsi.Sense{}) })
	default:
		l.array.eng.After(l.array.cfg.TransportDelay, func(simclock.Time) {
			done(scsi.StatusGood, scsi.Sense{})
		})
	}
}

func (l *LUN) inRange(cmd scsi.Command) bool {
	return cmd.Blocks > 0 && cmd.LBA+uint64(cmd.Blocks) <= l.sectors
}

// Allocator hands out consecutive LUNs from an array, the way a datastore
// carves VMDKs from a volume.
type Allocator struct {
	array *Array
	next  uint64
}

// NewAllocator returns an allocator starting at array LBA 0.
func NewAllocator(array *Array) *Allocator { return &Allocator{array: array} }

// Alloc carves the next LUN of the given size.
func (al *Allocator) Alloc(sectors uint64) *LUN {
	l := NewLUN(al.array, al.next, sectors)
	al.next += sectors
	return l
}

// Remaining returns the unallocated capacity.
func (al *Allocator) Remaining() uint64 { return al.array.CapacitySectors() - al.next }
