// Package analysis implements the offline, trace-based analyses the paper
// reserves for questions histograms cannot answer online (§3.6): exact
// (unbinned) statistics, 2-D metric correlations such as seek distance
// versus latency, and sequential-stream detection.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"vscsistats/internal/histogram"
	"vscsistats/internal/trace"
)

// Exact holds unbinned distribution statistics for one metric, recomputed
// from a trace with O(n) space — the cost the online histograms avoid.
type Exact struct {
	Count              int64
	Mean               float64
	Min, Max           int64
	P50, P90, P95, P99 int64
}

// ExactOf computes exact statistics over a sample set.
func ExactOf(values []int64) Exact {
	if len(values) == 0 {
		return Exact{}
	}
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum float64
	for _, v := range sorted {
		sum += float64(v)
	}
	pick := func(p float64) int64 {
		idx := int(p*float64(len(sorted))) - 1
		if idx < 0 {
			idx = 0
		}
		return sorted[idx]
	}
	return Exact{
		Count: int64(len(sorted)),
		Mean:  sum / float64(len(sorted)),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		P50:   pick(0.50),
		P90:   pick(0.90),
		P95:   pick(0.95),
		P99:   pick(0.99),
	}
}

// String renders the statistics on one line.
func (e Exact) String() string {
	return fmt.Sprintf("n=%d mean=%.1f min=%d p50=%d p90=%d p95=%d p99=%d max=%d",
		e.Count, e.Mean, e.Min, e.P50, e.P90, e.P95, e.P99, e.Max)
}

// Report is the full exact-statistics report for a trace.
type Report struct {
	Commands      int64
	Reads, Writes int64
	Latency       Exact // µs, all block I/O
	ReadLatency   Exact
	WriteLatency  Exact
	Length        Exact // bytes
	SeekDistance  Exact // sectors, signed
	Interarrival  Exact // µs
	Outstanding   Exact
}

// Analyze recomputes exact workload statistics from a trace. Only block I/O
// records contribute, matching the online collector's visibility rule.
func Analyze(records []trace.Record) *Report {
	rep := &Report{}
	var lat, rlat, wlat, lengths, seeks, inter, oio []int64
	ordered := trace.Filter(records, trace.OnlyBlockIO)
	trace.SortByIssue(ordered)
	var lastEnd uint64
	var lastIssue int64
	for i, r := range ordered {
		rep.Commands++
		if r.Op.IsWrite() {
			rep.Writes++
			wlat = append(wlat, r.LatencyMicros())
		} else {
			rep.Reads++
			rlat = append(rlat, r.LatencyMicros())
		}
		lat = append(lat, r.LatencyMicros())
		lengths = append(lengths, r.Bytes())
		oio = append(oio, int64(r.Outstanding))
		if i > 0 {
			seeks = append(seeks, int64(r.LBA)-int64(lastEnd))
			inter = append(inter, r.IssueMicros-lastIssue)
		}
		lastEnd = r.LastLBA()
		lastIssue = r.IssueMicros
	}
	rep.Latency = ExactOf(lat)
	rep.ReadLatency = ExactOf(rlat)
	rep.WriteLatency = ExactOf(wlat)
	rep.Length = ExactOf(lengths)
	rep.SeekDistance = ExactOf(seeks)
	rep.Interarrival = ExactOf(inter)
	rep.Outstanding = ExactOf(oio)
	return rep
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d commands (%d reads, %d writes)\n", r.Commands, r.Reads, r.Writes)
	fmt.Fprintf(&b, "  latency (us):      %s\n", r.Latency)
	fmt.Fprintf(&b, "  read latency:      %s\n", r.ReadLatency)
	fmt.Fprintf(&b, "  write latency:     %s\n", r.WriteLatency)
	fmt.Fprintf(&b, "  length (bytes):    %s\n", r.Length)
	fmt.Fprintf(&b, "  seek (sectors):    %s\n", r.SeekDistance)
	fmt.Fprintf(&b, "  interarrival (us): %s\n", r.Interarrival)
	fmt.Fprintf(&b, "  outstanding:       %s\n", r.Outstanding)
	return b.String()
}

// SeekLatency correlates each command's seek distance (from its
// predecessor) with its completion latency as a 2-D histogram — the
// example correlation §3.6 names ("it might be interesting to correlate
// seek distance with latency").
func SeekLatency(records []trace.Record) *histogram.Snapshot2D {
	h := histogram.New2D("Seek Distance vs Latency",
		"seek (sectors)", histogram.SeekDistanceEdges(),
		"latency (us)", histogram.LatencyEdges())
	ordered := trace.Filter(records, trace.OnlyBlockIO)
	trace.SortByIssue(ordered)
	var lastEnd uint64
	for i, r := range ordered {
		if i > 0 {
			h.Insert(int64(r.LBA)-int64(lastEnd), r.LatencyMicros())
		}
		lastEnd = r.LastLBA()
	}
	return h.Snapshot()
}

// Distance is the total-variation distance between two snapshots'
// normalized bin distributions, in [0,1]; 0 means identical shape. It powers
// workload-fingerprint comparison (§7's automatic categorization).
func Distance(a, b *histogram.Snapshot) float64 {
	if a.Total == 0 || b.Total == 0 {
		if a.Total == b.Total {
			return 0
		}
		return 1
	}
	var d float64
	for i := range a.Counts {
		pa := float64(a.Counts[i]) / float64(a.Total)
		pb := float64(b.Counts[i]) / float64(b.Total)
		if pa > pb {
			d += pa - pb
		} else {
			d += pb - pa
		}
	}
	return d / 2
}
