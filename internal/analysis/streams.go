package analysis

import (
	"fmt"
	"sort"
	"strings"

	"vscsistats/internal/trace"
)

// Stream is one detected sequential run in a trace.
type Stream struct {
	// StartLBA is the first logical block of the run.
	StartLBA uint64
	// Commands is the number of I/Os in the run.
	Commands int
	// Sectors is the total extent covered.
	Sectors uint64
	// FirstMicros and LastMicros bound the run in time.
	FirstMicros, LastMicros int64
	// Writes reports whether the run is a write stream.
	Writes bool
}

// String renders the stream.
func (s Stream) String() string {
	kind := "read"
	if s.Writes {
		kind = "write"
	}
	return fmt.Sprintf("%s stream @%d: %d cmds, %d sectors, %d-%dus",
		kind, s.StartLBA, s.Commands, s.Sectors, s.FirstMicros, s.LastMicros)
}

// StreamConfig tunes detection.
type StreamConfig struct {
	// SlackSectors is how far past the expected next block an I/O may land
	// and still extend a stream (tolerates small gaps/strides).
	SlackSectors uint64
	// MaxActive bounds concurrently tracked candidate streams, playing the
	// same role as the collector's look-behind window N (§3.1): with k
	// interleaved sequential streams, MaxActive >= k finds them all.
	MaxActive int
	// MinCommands filters out runs too short to call streams.
	MinCommands int
}

// DefaultStreamConfig mirrors the collector's window of 16.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{SlackSectors: 16, MaxActive: 16, MinCommands: 4}
}

// DetectStreams finds interleaved sequential runs in a trace — the offline
// counterpart of the windowed seek-distance histogram, answering not just
// "are there multiple sequential streams" but where and how long.
func DetectStreams(records []trace.Record, cfg StreamConfig) []Stream {
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 16
	}
	type active struct {
		Stream
		expected uint64
		lastUsed int
	}
	ordered := trace.Filter(records, trace.OnlyBlockIO)
	trace.SortByIssue(ordered)
	var tracked []*active
	var finished []Stream
	emit := func(a *active) {
		if a.Commands >= cfg.MinCommands {
			finished = append(finished, a.Stream)
		}
	}
	for i, r := range ordered {
		matched := false
		for _, a := range tracked {
			if a.Writes == r.Op.IsWrite() &&
				r.LBA >= a.expected && r.LBA <= a.expected+cfg.SlackSectors {
				a.Commands++
				a.Sectors += uint64(r.Blocks)
				a.expected = r.LastLBA() + 1
				a.LastMicros = r.IssueMicros
				a.lastUsed = i
				matched = true
				break
			}
		}
		if matched {
			continue
		}
		na := &active{
			Stream: Stream{
				StartLBA:    r.LBA,
				Commands:    1,
				Sectors:     uint64(r.Blocks),
				FirstMicros: r.IssueMicros,
				LastMicros:  r.IssueMicros,
				Writes:      r.Op.IsWrite(),
			},
			expected: r.LastLBA() + 1,
			lastUsed: i,
		}
		if len(tracked) >= cfg.MaxActive {
			// Retire the least recently extended candidate.
			lru := 0
			for j, a := range tracked {
				if a.lastUsed < tracked[lru].lastUsed {
					lru = j
				}
			}
			emit(tracked[lru])
			tracked[lru] = na
		} else {
			tracked = append(tracked, na)
		}
	}
	for _, a := range tracked {
		emit(a)
	}
	sort.Slice(finished, func(i, j int) bool {
		if finished[i].Commands != finished[j].Commands {
			return finished[i].Commands > finished[j].Commands
		}
		return finished[i].StartLBA < finished[j].StartLBA
	})
	return finished
}

// StreamSummary renders detected streams plus the fraction of commands they
// cover.
func StreamSummary(records []trace.Record, cfg StreamConfig) string {
	streams := DetectStreams(records, cfg)
	total := len(trace.Filter(records, trace.OnlyBlockIO))
	var covered int
	for _, s := range streams {
		covered += s.Commands
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d sequential streams covering %d/%d commands\n",
		len(streams), covered, total)
	for i, s := range streams {
		if i == 10 {
			fmt.Fprintf(&b, "  ... and %d more\n", len(streams)-10)
			break
		}
		fmt.Fprintf(&b, "  %s\n", s)
	}
	return b.String()
}
