package analysis

import (
	"math"
	"testing"

	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/trace"
)

func TestArrivalCounts(t *testing.T) {
	recs := []trace.Record{
		rec(0, scsi.OpRead10, 0, 8, 0, 100),
		rec(1, scsi.OpRead10, 8, 8, 500, 100),
		rec(2, scsi.OpRead10, 16, 8, 1500, 100),
		{Seq: 3, Op: scsi.OpInquiry, IssueMicros: 100}, // invisible
	}
	counts := ArrivalCounts(recs, 1000)
	if len(counts) != 2 || counts[0] != 2 || counts[1] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if ArrivalCounts(nil, 1000) != nil || ArrivalCounts(recs, 0) != nil {
		t.Error("degenerate inputs should return nil")
	}
}

func TestHurstPoissonNearHalf(t *testing.T) {
	// Independent arrivals: H should estimate near 0.5.
	rng := simclock.NewRand(11)
	counts := make([]float64, 4096)
	for i := range counts {
		// Sum of Bernoulli arrivals approximates Poisson.
		var c float64
		for j := 0; j < 20; j++ {
			if rng.Float64() < 0.3 {
				c++
			}
		}
		counts[i] = c
	}
	h, ok := Hurst(counts)
	if !ok {
		t.Fatal("estimation failed")
	}
	if h < 0.35 || h > 0.65 {
		t.Errorf("Poisson-like H = %.2f, want near 0.5", h)
	}
}

func TestHurstLongRangeDependenceHigher(t *testing.T) {
	// Heavy-tailed on/off arrivals exhibit long-range dependence: the
	// estimate must clearly exceed the memoryless baseline.
	rng := simclock.NewRand(7)
	counts := make([]float64, 8192)
	i := 0
	on := true
	for i < len(counts) {
		// Pareto-ish period lengths: u^(-1/1.2), capped.
		u := rng.Float64()
		period := int(math.Min(2000, math.Pow(u, -1/1.2)))
		if period < 1 {
			period = 1
		}
		for j := 0; j < period && i < len(counts); j++ {
			if on {
				counts[i] = 10
			}
			i++
		}
		on = !on
	}
	h, ok := Hurst(counts)
	if !ok {
		t.Fatal("estimation failed")
	}
	if h < 0.65 {
		t.Errorf("heavy-tailed on/off H = %.2f, want > 0.65", h)
	}
}

func TestHurstDegenerate(t *testing.T) {
	if _, ok := Hurst(make([]float64, 10)); ok {
		t.Error("short series should fail")
	}
	flat := make([]float64, 1000)
	for i := range flat {
		flat[i] = 5
	}
	if _, ok := Hurst(flat); ok {
		t.Error("zero-variance series should fail")
	}
}

func TestBurstinessOf(t *testing.T) {
	// 10 commands in one window, then silence for nine windows, repeated.
	var recs []trace.Record
	seq := 0
	for block := 0; block < 100; block++ {
		base := int64(block) * 10_000
		for j := 0; j < 10; j++ {
			recs = append(recs, rec(seq, scsi.OpRead10, uint64(seq*8), 8, base+int64(j), 100))
			seq++
		}
	}
	b := BurstinessOf(recs, 1000)
	if b.Windows < 900 {
		t.Fatalf("windows = %d", b.Windows)
	}
	if b.PeakToMean < 5 {
		t.Errorf("PeakToMean = %.1f, want bursty", b.PeakToMean)
	}
	if b.IndexOfDisp <= 1 {
		t.Errorf("IndexOfDispersion = %.2f, want > 1", b.IndexOfDisp)
	}
	empty := BurstinessOf(nil, 1000)
	if empty.Windows != 0 || empty.PeakToMean != 0 {
		t.Errorf("empty burstiness: %+v", empty)
	}
}
