package analysis

import (
	"math"

	"vscsistats/internal/trace"
)

// Self-similarity analysis of arrival processes, after the paper's
// reference [8] (Gomez & Santonja, "Self-similarity in I/O Workloads").
// This is a trace-side analysis: it needs the raw arrival sequence, which
// is exactly the kind of question §3.6 reserves for the tracing framework.

// ArrivalCounts buckets block-I/O arrivals into fixed windows and returns
// the per-window counts — the arrival process at the chosen timescale.
func ArrivalCounts(records []trace.Record, windowMicros int64) []float64 {
	if windowMicros <= 0 {
		return nil
	}
	ordered := trace.Filter(records, trace.OnlyBlockIO)
	if len(ordered) == 0 {
		return nil
	}
	trace.SortByIssue(ordered)
	start := ordered[0].IssueMicros
	end := ordered[len(ordered)-1].IssueMicros
	n := (end-start)/windowMicros + 1
	counts := make([]float64, n)
	for _, r := range ordered {
		counts[(r.IssueMicros-start)/windowMicros]++
	}
	return counts
}

// Hurst estimates the Hurst exponent of a count series by the
// aggregated-variance method: the series is averaged over blocks of size m,
// and for a self-similar process Var(X^(m)) ~ m^(2H-2). A log-log
// regression of variance against m yields H. H ≈ 0.5 indicates a
// memoryless (Poisson-like) arrival process; H near 1 indicates strong
// long-range dependence — burstiness that aggregation does not smooth.
//
// ok is false when the series is too short (fewer than 64 windows) or
// degenerate (zero variance).
func Hurst(counts []float64) (h float64, ok bool) {
	if len(counts) < 64 {
		return 0, false
	}
	var logM, logV []float64
	for m := 1; m <= len(counts)/8; m *= 2 {
		agg := aggregate(counts, m)
		v := variance(agg)
		if v <= 0 {
			break
		}
		logM = append(logM, math.Log(float64(m)))
		logV = append(logV, math.Log(v))
	}
	if len(logM) < 3 {
		return 0, false
	}
	slope := regressSlope(logM, logV)
	h = 1 + slope/2
	// Clamp to the meaningful range; estimation noise can stray outside.
	if h < 0 {
		h = 0
	}
	if h > 1 {
		h = 1
	}
	return h, true
}

// aggregate averages the series over non-overlapping blocks of size m.
func aggregate(x []float64, m int) []float64 {
	n := len(x) / m
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < m; j++ {
			sum += x[i*m+j]
		}
		out[i] = sum / float64(m)
	}
	return out
}

func variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	var ss float64
	for _, v := range x {
		d := v - mean
		ss += d * d
	}
	return ss / float64(len(x))
}

// regressSlope is ordinary least squares through (x, y).
func regressSlope(x, y []float64) float64 {
	var sx, sy, sxx, sxy float64
	n := float64(len(x))
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// Burstiness summarizes an arrival-count series: peak-to-mean ratio and
// the index of dispersion (variance/mean; 1 for Poisson).
type Burstiness struct {
	Windows     int
	Mean        float64
	Peak        float64
	PeakToMean  float64
	IndexOfDisp float64
	Hurst       float64
	HurstOK     bool
}

// BurstinessOf computes the summary at the given window size.
func BurstinessOf(records []trace.Record, windowMicros int64) Burstiness {
	counts := ArrivalCounts(records, windowMicros)
	b := Burstiness{Windows: len(counts)}
	if len(counts) == 0 {
		return b
	}
	for _, c := range counts {
		b.Mean += c
		if c > b.Peak {
			b.Peak = c
		}
	}
	b.Mean /= float64(len(counts))
	if b.Mean > 0 {
		b.PeakToMean = b.Peak / b.Mean
		b.IndexOfDisp = variance(counts) / b.Mean
	}
	b.Hurst, b.HurstOK = Hurst(counts)
	return b
}
