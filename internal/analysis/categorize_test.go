package analysis

import (
	"strings"
	"testing"

	"vscsistats/internal/core"
	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

// snapshotOf drives a disk with gen and returns the collected snapshot.
func snapshotOf(t *testing.T, seed int64, issue func(d *vscsi.Disk, rng func(int64) int64)) *core.Snapshot {
	t.Helper()
	eng := simclock.NewEngine()
	backend := vscsi.BackendFunc(func(r *vscsi.Request, done func(scsi.Status, scsi.Sense)) {
		eng.After(simclock.Millisecond, func(simclock.Time) { done(scsi.StatusGood, scsi.Sense{}) })
	})
	d := vscsi.NewDisk(eng, backend, vscsi.DiskConfig{VM: "v", Name: "d", CapacitySectors: 1 << 26})
	col := core.NewCollector("v", "d")
	col.Enable()
	d.AddObserver(col)
	r := simclock.NewRand(seed)
	issue(d, r.Int63n)
	eng.Run()
	return col.Snapshot()
}

func randomRead8K(d *vscsi.Disk, rng func(int64) int64) {
	for i := 0; i < 500; i++ {
		d.Issue(scsi.Read(uint64(rng(1<<25))*16, 16), nil)
	}
}

func seqRead64K(d *vscsi.Disk, rng func(int64) int64) {
	for i := 0; i < 500; i++ {
		d.Issue(scsi.Read(uint64(i*128), 128), nil)
	}
}

func randomWrite4K(d *vscsi.Disk, rng func(int64) int64) {
	for i := 0; i < 500; i++ {
		d.Issue(scsi.Write(uint64(rng(1<<25))*8, 8), nil)
	}
}

func TestCatalogClassifiesNearestWorkload(t *testing.T) {
	catalog, err := NewCatalog(
		Reference{"oltp-like", snapshotOf(t, 1, randomRead8K)},
		Reference{"stream-like", snapshotOf(t, 2, seqRead64K)},
		Reference{"logger-like", snapshotOf(t, 3, randomWrite4K)},
	)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh random-8K-read run (different seed) must match "oltp-like".
	probe := snapshotOf(t, 42, randomRead8K)
	matches, err := catalog.Classify(probe)
	if err != nil {
		t.Fatal(err)
	}
	if matches[0].Name != "oltp-like" {
		t.Fatalf("classified as %v", matches)
	}
	if matches[0].Score >= matches[1].Score {
		t.Errorf("ranking not strict: %v", matches)
	}
	// A sequential probe must match the stream reference.
	probe2 := snapshotOf(t, 43, seqRead64K)
	matches2, _ := catalog.Classify(probe2)
	if matches2[0].Name != "stream-like" {
		t.Fatalf("sequential probe classified as %v", matches2)
	}
	// Component breakdown is present and bounded.
	for _, m := range matches {
		for k, v := range m.Components {
			if v < 0 || v > 1 {
				t.Errorf("component %s = %v out of range", k, v)
			}
		}
	}
}

func TestCatalogReportAndErrors(t *testing.T) {
	catalog, _ := NewCatalog(Reference{"w", snapshotOf(t, 1, randomWrite4K)})
	rep, err := catalog.Report(snapshotOf(t, 2, randomWrite4K))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "closest reference workload: w") {
		t.Errorf("report:\n%s", rep)
	}
	if !strings.Contains(rep, "fingerprint:") {
		t.Errorf("report missing fingerprint:\n%s", rep)
	}
	if _, err := catalog.Classify(nil); err == nil {
		t.Error("nil probe should fail")
	}
	empty := core.NewCollector("v", "d")
	empty.Enable()
	if _, err := NewCatalog(Reference{"bad", empty.Snapshot()}); err == nil {
		t.Error("empty reference should fail")
	}
	if err := catalog.Add("bad", nil); err == nil {
		t.Error("nil Add should fail")
	}
	if err := catalog.Add("more", snapshotOf(t, 5, seqRead64K)); err != nil {
		t.Error(err)
	}
}

func TestSimilarHistograms(t *testing.T) {
	a := snapshotOf(t, 1, randomRead8K)
	b := snapshotOf(t, 2, randomRead8K)
	c := snapshotOf(t, 3, seqRead64K)
	if !SimilarHistograms(a.IOLength[core.All], b.IOLength[core.All], 0.05) {
		t.Error("same workload should be similar")
	}
	if SimilarHistograms(a.IOLength[core.All], c.IOLength[core.All], 0.05) {
		t.Error("different sizes should not be similar")
	}
}
