package analysis

import (
	"strings"
	"testing"

	"vscsistats/internal/histogram"
	"vscsistats/internal/scsi"
	"vscsistats/internal/trace"
)

func rec(seq int, op scsi.OpCode, lba uint64, blocks uint32, issue, lat int64) trace.Record {
	return trace.Record{
		Seq: uint64(seq), VM: "v", Disk: "d", Op: op, LBA: lba, Blocks: blocks,
		IssueMicros: issue, CompleteMicros: issue + lat, Status: scsi.StatusGood,
	}
}

func TestExactOf(t *testing.T) {
	var vals []int64
	for v := int64(1); v <= 100; v++ {
		vals = append(vals, v)
	}
	e := ExactOf(vals)
	if e.Count != 100 || e.Min != 1 || e.Max != 100 {
		t.Fatalf("%+v", e)
	}
	if e.Mean != 50.5 {
		t.Errorf("Mean = %v", e.Mean)
	}
	if e.P50 != 50 || e.P95 != 95 || e.P99 != 99 {
		t.Errorf("percentiles: %+v", e)
	}
	if ExactOf(nil).Count != 0 {
		t.Error("empty ExactOf should be zero")
	}
	if e.String() == "" {
		t.Error("String empty")
	}
}

func TestAnalyzeReport(t *testing.T) {
	recs := []trace.Record{
		rec(0, scsi.OpRead10, 0, 8, 0, 1000),
		rec(1, scsi.OpRead10, 8, 8, 500, 1000),           // seek 1
		rec(2, scsi.OpWrite10, 1000, 16, 900, 3000),      // seek 985
		{Seq: 3, VM: "v", Disk: "d", Op: scsi.OpInquiry}, // invisible
	}
	r := Analyze(recs)
	if r.Commands != 3 || r.Reads != 2 || r.Writes != 1 {
		t.Fatalf("%+v", r)
	}
	if r.SeekDistance.Count != 2 || r.SeekDistance.Min != 1 || r.SeekDistance.Max != 985 {
		t.Errorf("seek: %+v", r.SeekDistance)
	}
	if r.Interarrival.Count != 2 || r.Interarrival.Min != 400 || r.Interarrival.Max != 500 {
		t.Errorf("interarrival: %+v", r.Interarrival)
	}
	if r.WriteLatency.Mean != 3000 {
		t.Errorf("write latency: %+v", r.WriteLatency)
	}
	if !strings.Contains(r.String(), "3 commands (2 reads, 1 writes)") {
		t.Errorf("String:\n%s", r)
	}
}

func TestSeekLatencyCorrelation(t *testing.T) {
	recs := []trace.Record{
		rec(0, scsi.OpRead10, 0, 8, 0, 200),
		rec(1, scsi.OpRead10, 8, 8, 100, 200),           // seek 1, fast
		rec(2, scsi.OpRead10, 9_000_000, 8, 200, 20000), // far seek, slow
	}
	h := SeekLatency(recs)
	if h.Total != 2 {
		t.Fatalf("Total = %d", h.Total)
	}
	// The far/slow sample must land in a high-seek, high-latency cell.
	mx := h.MarginalX()
	my := h.MarginalY()
	if mx.Max < 1000000 && mx.Counts[len(mx.Counts)-1] == 0 {
		t.Errorf("marginal X: %v", mx.Counts)
	}
	var slow int64
	for i := range my.Counts {
		lo, _ := my.BinRange(i)
		if lo >= 15000 {
			slow += my.Counts[i]
		}
	}
	if slow != 1 {
		t.Errorf("slow samples = %d\n%v", slow, my.Counts)
	}
}

func TestDistance(t *testing.T) {
	a := histogram.New("a", "u", []int64{10, 20})
	b := histogram.New("b", "u", []int64{10, 20})
	for i := 0; i < 10; i++ {
		a.Insert(5)
		b.Insert(5)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	if d := Distance(sa, sb); d != 0 {
		t.Errorf("identical distance = %v", d)
	}
	c := histogram.New("c", "u", []int64{10, 20})
	for i := 0; i < 10; i++ {
		c.Insert(15)
	}
	if d := Distance(sa, c.Snapshot()); d != 1 {
		t.Errorf("disjoint distance = %v", d)
	}
	empty := histogram.New("e", "u", []int64{10, 20}).Snapshot()
	if Distance(empty, empty) != 0 || Distance(sa, empty) != 1 {
		t.Error("empty-histogram distances wrong")
	}
}

func TestDetectStreamsSingle(t *testing.T) {
	var recs []trace.Record
	for i := 0; i < 20; i++ {
		recs = append(recs, rec(i, scsi.OpRead10, uint64(i*8), 8, int64(i*100), 500))
	}
	streams := DetectStreams(recs, DefaultStreamConfig())
	if len(streams) != 1 {
		t.Fatalf("streams: %v", streams)
	}
	s := streams[0]
	if s.Commands != 20 || s.StartLBA != 0 || s.Sectors != 160 || s.Writes {
		t.Errorf("stream: %+v", s)
	}
}

func TestDetectStreamsInterleaved(t *testing.T) {
	// Two interleaved sequential streams plus random noise.
	var recs []trace.Record
	seq := 0
	add := func(op scsi.OpCode, lba uint64) {
		recs = append(recs, rec(seq, op, lba, 8, int64(seq*100), 500))
		seq++
	}
	for i := 0; i < 30; i++ {
		add(scsi.OpRead10, uint64(i*8))
		add(scsi.OpWrite10, 5_000_000+uint64(i*8))
		add(scsi.OpRead10, uint64(1_000_000+i*977_531)) // scattered noise
	}
	streams := DetectStreams(recs, DefaultStreamConfig())
	if len(streams) < 2 {
		t.Fatalf("found %d streams, want >= 2", len(streams))
	}
	if streams[0].Commands != 30 || streams[1].Commands != 30 {
		t.Errorf("top streams: %v, %v", streams[0], streams[1])
	}
	// One is the write stream.
	if streams[0].Writes == streams[1].Writes {
		t.Errorf("expected one read and one write stream: %v %v", streams[0], streams[1])
	}
}

func TestDetectStreamsRespectsSlack(t *testing.T) {
	// Strided reads with gaps of 8 sectors: slack 16 keeps them one stream,
	// slack 0 splits them all.
	var recs []trace.Record
	for i := 0; i < 10; i++ {
		recs = append(recs, rec(i, scsi.OpRead10, uint64(i*16), 8, int64(i*100), 500))
	}
	cfg := DefaultStreamConfig()
	if got := DetectStreams(recs, cfg); len(got) != 1 {
		t.Errorf("slack 16: %v", got)
	}
	cfg.SlackSectors = 0
	cfg.MinCommands = 1
	if got := DetectStreams(recs, cfg); len(got) < 5 {
		t.Errorf("slack 0 should fragment: %v", got)
	}
}

func TestDetectStreamsMaxActiveEviction(t *testing.T) {
	// More interleaved streams than MaxActive: detection degrades
	// gracefully (exactly the paper's caveat about window size N, §3.1).
	var recs []trace.Record
	seq := 0
	for i := 0; i < 20; i++ {
		for s := 0; s < 4; s++ {
			recs = append(recs, rec(seq, scsi.OpRead10,
				uint64(s)*10_000_000+uint64(i*8), 8, int64(seq*100), 500))
			seq++
		}
	}
	cfg := DefaultStreamConfig()
	cfg.MaxActive = 4
	if got := DetectStreams(recs, cfg); len(got) != 4 {
		t.Errorf("4 tracked streams should survive: %v", got)
	}
	cfg.MaxActive = 2
	cfg.MinCommands = 1
	got := DetectStreams(recs, cfg)
	// With only 2 slots for 4 streams, every arrival evicts: detection
	// degrades to fragments rather than finding the long runs.
	if len(got) <= 4 {
		t.Errorf("eviction should fragment the streams, got %d", len(got))
	}
}

func TestStreamSummary(t *testing.T) {
	var recs []trace.Record
	for i := 0; i < 8; i++ {
		recs = append(recs, rec(i, scsi.OpRead10, uint64(i*8), 8, int64(i*100), 500))
	}
	out := StreamSummary(recs, DefaultStreamConfig())
	if !strings.Contains(out, "1 sequential streams covering 8/8 commands") {
		t.Errorf("summary:\n%s", out)
	}
}
