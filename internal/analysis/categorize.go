package analysis

import (
	"fmt"
	"sort"
	"strings"

	"vscsistats/internal/core"
	"vscsistats/internal/histogram"
)

// Workload categorization against a reference catalog — the full version of
// the paper's §7 plan to "investigate automatic categorization of
// workloads": snapshots are matched to named reference characterizations by
// the total-variation distance of their environment-independent histograms
// (size, seek distance, outstanding I/Os, read fraction), the §3.7 metrics
// that survive a change of storage hardware.

// Reference is a named workload characterization in a catalog.
type Reference struct {
	Name string
	Snap *core.Snapshot
}

// Catalog matches snapshots against references.
type Catalog struct {
	refs []Reference
}

// NewCatalog builds a catalog; references need at least one block I/O.
func NewCatalog(refs ...Reference) (*Catalog, error) {
	for _, r := range refs {
		if r.Snap == nil || r.Snap.Commands == 0 {
			return nil, fmt.Errorf("analysis: reference %q holds no block I/O", r.Name)
		}
	}
	return &Catalog{refs: refs}, nil
}

// Add appends a reference.
func (c *Catalog) Add(name string, snap *core.Snapshot) error {
	if snap == nil || snap.Commands == 0 {
		return fmt.Errorf("analysis: reference %q holds no block I/O", name)
	}
	c.refs = append(c.refs, Reference{name, snap})
	return nil
}

// Names lists the catalog's reference names in insertion order.
func (c *Catalog) Names() []string {
	out := make([]string, len(c.refs))
	for i, r := range c.refs {
		out[i] = r.Name
	}
	return out
}

// Best classifies the probe and returns only the closest reference.
func (c *Catalog) Best(probe *core.Snapshot) (Match, error) {
	matches, err := c.Classify(probe)
	if err != nil {
		return Match{}, err
	}
	if len(matches) == 0 {
		return Match{}, fmt.Errorf("analysis: catalog holds no references")
	}
	return matches[0], nil
}

// Match is one catalog entry's similarity to a probe snapshot.
type Match struct {
	Name string
	// Score is a distance in [0,1]: 0 identical shapes, 1 disjoint.
	Score float64
	// Components break the score down per metric.
	Components map[string]float64
}

// String renders the match.
func (m Match) String() string {
	return fmt.Sprintf("%s (distance %.3f)", m.Name, m.Score)
}

// classifyWeights weights the environment-independent components. Size and
// locality carry most of a workload's identity; queue depth and read mix
// refine it.
var classifyWeights = []struct {
	name   string
	weight float64
}{
	{"ioLength", 0.35},
	{"seekDistance", 0.30},
	{"outstandingIOs", 0.15},
	{"readFraction", 0.20},
}

// Classify ranks the catalog against the probe, best match first.
func (c *Catalog) Classify(probe *core.Snapshot) ([]Match, error) {
	if probe == nil || probe.Commands == 0 {
		return nil, fmt.Errorf("analysis: probe holds no block I/O")
	}
	matches := make([]Match, 0, len(c.refs))
	for _, ref := range c.refs {
		m := Match{Name: ref.Name, Components: make(map[string]float64)}
		for _, w := range classifyWeights {
			var d float64
			switch w.name {
			case "ioLength":
				d = Distance(probe.IOLength[core.All], ref.Snap.IOLength[core.All])
			case "seekDistance":
				d = Distance(probe.SeekDistance[core.All], ref.Snap.SeekDistance[core.All])
			case "outstandingIOs":
				d = Distance(probe.Outstanding[core.All], ref.Snap.Outstanding[core.All])
			case "readFraction":
				d = probe.ReadFraction() - ref.Snap.ReadFraction()
				if d < 0 {
					d = -d
				}
			}
			m.Components[w.name] = d
			m.Score += w.weight * d
		}
		matches = append(matches, m)
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i].Score < matches[j].Score })
	return matches, nil
}

// Report renders a classification as text: the verdict, the ranking, and
// the fingerprint-derived recommendations for the probe.
func (c *Catalog) Report(probe *core.Snapshot) (string, error) {
	matches, err := c.Classify(probe)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if len(matches) > 0 {
		fmt.Fprintf(&b, "closest reference workload: %s\n", matches[0])
	}
	for _, m := range matches {
		fmt.Fprintf(&b, "  %-20s %.3f\n", m.Name, m.Score)
	}
	b.WriteString(core.FingerprintOf(probe).Report())
	return b.String(), nil
}

// SimilarHistograms reports whether two snapshots' named histograms are
// within eps total-variation distance — a convenience for regression
// checks against golden characterizations.
func SimilarHistograms(a, b *histogram.Snapshot, eps float64) bool {
	return Distance(a, b) <= eps
}
