package workload

import (
	"math"
	"testing"

	"vscsistats/internal/core"
	"vscsistats/internal/simclock"
)

func TestPacedDeterministic(t *testing.T) {
	run := func() *core.Snapshot {
		r := newWLRig(t, 2*simclock.Millisecond, 1<<21)
		p := NewPaced(r.eng, r.disk, PacedSpec{
			Name: "det", BlockBytes: 8 << 10, ReadPct: 70, RandomPct: 100,
			IOPS: 200, Burst: 2, Seed: 42,
		})
		p.Start()
		r.eng.RunUntil(20 * simclock.Second)
		p.Stop()
		r.eng.Run()
		return r.col.Snapshot()
	}
	a, b := run(), run()
	if !a.StateEquals(b) {
		t.Fatal("same seed produced different collector state")
	}
	if a.Commands == 0 {
		t.Fatal("no commands observed")
	}
}

func TestPacedRateAndMix(t *testing.T) {
	r := newWLRig(t, simclock.Millisecond, 1<<21)
	const iops, secs = 500.0, 40
	p := NewPaced(r.eng, r.disk, PacedSpec{
		Name: "rate", BlockBytes: 4 << 10, ReadPct: 25, RandomPct: 100,
		IOPS: iops, Seed: 7,
	})
	p.Start()
	r.eng.RunUntil(secs * simclock.Second)
	p.Stop()
	r.eng.Run()
	s := r.col.Snapshot()
	// Poisson arrivals: expect iops*secs ± a generous 10%.
	want := float64(iops * secs)
	if got := float64(s.Commands); math.Abs(got-want) > want/10 {
		t.Fatalf("issued %v commands, want ~%v", got, want)
	}
	if rf := s.ReadFraction(); math.Abs(rf-0.25) > 0.05 {
		t.Fatalf("read fraction %.3f, want ~0.25", rf)
	}
	if p.Throttled() != 0 {
		t.Fatalf("throttled %d arrivals at IOPS well under the default cap", p.Throttled())
	}
}

func TestPacedOutstandingCap(t *testing.T) {
	// 1000 bursts/s of 8 commands against a 50ms device wants ~400
	// outstanding; the cap of 16 must hold and skipped arrivals must count.
	r := newWLRig(t, 50*simclock.Millisecond, 1<<21)
	p := NewPaced(r.eng, r.disk, PacedSpec{
		Name: "cap", BlockBytes: 4 << 10, ReadPct: 100, RandomPct: 100,
		IOPS: 1000, Burst: 8, MaxOutstanding: 16, Seed: 3,
	})
	maxSeen := 0
	p.Start()
	for r.eng.Now() < 2*simclock.Second {
		if !r.eng.Step() {
			break
		}
		if n := r.disk.Inflight(); n > maxSeen {
			maxSeen = n
		}
	}
	p.Stop()
	r.eng.Run()
	if maxSeen > 16 {
		t.Fatalf("inflight reached %d, cap is 16", maxSeen)
	}
	if p.Throttled() == 0 {
		t.Fatal("expected throttled arrivals under a saturating spec")
	}
	if p.Stats().Ops == 0 {
		t.Fatal("no completions at all")
	}
}

func TestFleetPersonalitiesWellFormed(t *testing.T) {
	ps := FleetPersonalities()
	if len(ps) < 5 {
		t.Fatalf("only %d personalities", len(ps))
	}
	seen := map[string]bool{}
	for _, fp := range ps {
		if seen[fp.Name] {
			t.Fatalf("duplicate personality %q", fp.Name)
		}
		seen[fp.Name] = true
		if fp.Weight <= 0 || fp.BaseIOPS <= 0 || fp.BlockBytes%512 != 0 {
			t.Fatalf("personality %q ill-formed: %+v", fp.Name, fp)
		}
		// The spec must instantiate and drive a disk without panicking.
		r := newWLRig(t, 2*simclock.Millisecond, 1<<21)
		p := NewPaced(r.eng, r.disk, fp.PacedSpec(11, 100))
		p.Start()
		r.eng.RunUntil(10 * simclock.Second)
		p.Stop()
		r.eng.Run()
		if r.col.Snapshot().Commands == 0 {
			t.Fatalf("personality %q issued nothing in 10s at intensity 100", fp.Name)
		}
	}
	if _, ok := FleetPersonalityByName("oltp"); !ok {
		t.Fatal("oltp missing from the built-in population")
	}
	if _, ok := FleetPersonalityByName("nope"); ok {
		t.Fatal("unknown personality resolved")
	}
}
