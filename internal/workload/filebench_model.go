package workload

import (
	"fmt"
	"strconv"
	"strings"

	"vscsistats/internal/simclock"
)

// This file implements a parser for a Filebench-style model language
// ("Filebench is a model based workload generator for file systems ... The
// input to this program is a model file that specifies processes and threads
// in a workflow", §4.1). The subset covers what the paper's workloads need:
//
//	define file name=datafile,size=10g
//	define fileset name=docs,entries=500,filesize=128k
//	define process name=shadow,instances=2 {
//	  thread name=reader,instances=10 {
//	    flowop read name=dbread,file=datafile,iosize=4k,random,dsync
//	    flowop delay name=think,value=2ms
//	  }
//	}
//	run 60
//
// Flowops: read, write, append, delay, sync. Flags: random (offset), dsync
// (synchronous durability). Sizes accept k/m/g suffixes; delays accept
// us/ms/s. A rate=N attribute throttles the flowop to N executions per
// second per thread ("rate and throughput limits can be specified", §4.1).

// Model is a parsed workload model.
type Model struct {
	Files      []FileDecl
	Processes  []ProcessDecl
	RunSeconds int // 0 means the scenario decides
}

// FileDecl declares a preallocated file, or — with Entries > 1 — a
// Filebench fileset of identically sized files; flowops targeting a fileset
// pick an entry at random per execution.
type FileDecl struct {
	Name    string
	Size    int64 // per-entry size
	Entries int
}

// ProcessDecl declares a process with thread groups.
type ProcessDecl struct {
	Name      string
	Instances int
	Threads   []ThreadDecl
}

// ThreadDecl declares a group of identical threads executing a flowop loop.
type ThreadDecl struct {
	Name      string
	Instances int
	Ops       []FlowOp
}

// FlowOp is one step of a thread's loop.
type FlowOp struct {
	Kind   string // read, write, append, delay, sync
	Name   string
	File   string
	IOSize int64
	Random bool
	Dsync  bool
	Delay  simclock.Time
	// Rate caps this flowop at Rate executions/second per thread (0 =
	// unthrottled).
	Rate int
	// Exponential makes a delay flowop sample from an exponential
	// distribution with mean Delay instead of a fixed pause — Poisson
	// think times, the standard open-system assumption.
	Exponential bool
}

// ParseModel parses the model language. Errors carry the line number.
func ParseModel(src string) (*Model, error) {
	p := &modelParser{}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if err := p.line(strings.TrimSpace(line)); err != nil {
			return nil, fmt.Errorf("model line %d: %w", lineNo+1, err)
		}
	}
	if err := p.finish(); err != nil {
		return nil, err
	}
	return &p.model, nil
}

// MustParseModel parses a model known at compile time.
func MustParseModel(src string) *Model {
	m, err := ParseModel(src)
	if err != nil {
		panic(err)
	}
	return m
}

type modelParser struct {
	model  Model
	proc   *ProcessDecl
	thread *ThreadDecl
}

func (p *modelParser) line(line string) error {
	if line == "" {
		return nil
	}
	// Closing braces may stand alone or trail a definition line.
	for strings.HasSuffix(line, "}") {
		defer func() { p.closeBlock() }()
		line = strings.TrimSpace(strings.TrimSuffix(line, "}"))
	}
	if line == "" {
		return nil
	}
	openBlock := strings.HasSuffix(line, "{")
	if openBlock {
		line = strings.TrimSpace(strings.TrimSuffix(line, "{"))
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	switch fields[0] {
	case "define":
		if len(fields) < 3 {
			return fmt.Errorf("define needs a kind and attributes")
		}
		attrs, err := parseAttrs(fields[2])
		if err != nil {
			return err
		}
		switch fields[1] {
		case "file":
			size, err := attrs.size("size")
			if err != nil {
				return err
			}
			p.model.Files = append(p.model.Files, FileDecl{Name: attrs.str("name"), Size: size, Entries: 1})
		case "fileset":
			size, err := attrs.size("filesize")
			if err != nil {
				return err
			}
			p.model.Files = append(p.model.Files, FileDecl{
				Name: attrs.str("name"), Size: size, Entries: attrs.count("entries")})
		case "process":
			if p.proc != nil {
				return fmt.Errorf("nested process definitions are not allowed")
			}
			p.proc = &ProcessDecl{Name: attrs.str("name"), Instances: attrs.count("instances")}
		default:
			return fmt.Errorf("unknown define kind %q", fields[1])
		}
	case "thread":
		if p.proc == nil {
			return fmt.Errorf("thread outside a process block")
		}
		if p.thread != nil {
			return fmt.Errorf("nested thread definitions are not allowed")
		}
		if len(fields) < 2 {
			return fmt.Errorf("thread needs attributes")
		}
		attrs, err := parseAttrs(fields[1])
		if err != nil {
			return err
		}
		p.thread = &ThreadDecl{Name: attrs.str("name"), Instances: attrs.count("instances")}
	case "flowop":
		if p.thread == nil {
			return fmt.Errorf("flowop outside a thread block")
		}
		if len(fields) < 2 {
			return fmt.Errorf("flowop needs a kind")
		}
		op := FlowOp{Kind: fields[1]}
		switch op.Kind {
		case "read", "write", "append", "delay", "sync":
		default:
			return fmt.Errorf("unknown flowop kind %q", op.Kind)
		}
		if len(fields) >= 3 {
			attrs, err := parseAttrs(fields[2])
			if err != nil {
				return err
			}
			op.Name = attrs.str("name")
			op.File = attrs.str("file")
			op.Random = attrs.flag("random")
			op.Dsync = attrs.flag("dsync")
			op.Exponential = attrs.flag("exponential")
			if v, ok := attrs["iosize"]; ok {
				size, err := parseSize(v)
				if err != nil {
					return err
				}
				op.IOSize = size
			}
			if v, ok := attrs["value"]; ok {
				d, err := parseDuration(v)
				if err != nil {
					return err
				}
				op.Delay = d
			}
			if v, ok := attrs["rate"]; ok {
				n, err := strconv.Atoi(v)
				if err != nil || n <= 0 {
					return fmt.Errorf("bad rate %q", v)
				}
				op.Rate = n
			}
		}
		switch op.Kind {
		case "read", "write", "append":
			if op.File == "" || op.IOSize <= 0 {
				return fmt.Errorf("flowop %s needs file= and iosize=", op.Kind)
			}
		case "delay":
			if op.Delay <= 0 {
				return fmt.Errorf("flowop delay needs value=")
			}
		}
		p.thread.Ops = append(p.thread.Ops, op)
	case "run":
		if len(fields) < 2 {
			return fmt.Errorf("run needs a duration in seconds")
		}
		secs, err := strconv.Atoi(fields[1])
		if err != nil || secs <= 0 {
			return fmt.Errorf("bad run duration %q", fields[1])
		}
		p.model.RunSeconds = secs
	default:
		return fmt.Errorf("unknown statement %q", fields[0])
	}
	_ = openBlock // braces are positional sugar; nesting is tracked by kind
	return nil
}

func (p *modelParser) closeBlock() {
	if p.thread != nil {
		p.proc.Threads = append(p.proc.Threads, *p.thread)
		p.thread = nil
		return
	}
	if p.proc != nil {
		p.model.Processes = append(p.model.Processes, *p.proc)
		p.proc = nil
	}
}

func (p *modelParser) finish() error {
	if p.thread != nil || p.proc != nil {
		return fmt.Errorf("model ends inside an unclosed block")
	}
	if len(p.model.Processes) == 0 {
		return fmt.Errorf("model defines no processes")
	}
	return p.model.validate()
}

func (m *Model) validate() error {
	files := make(map[string]bool, len(m.Files))
	for _, f := range m.Files {
		if f.Name == "" || f.Size <= 0 || f.Entries < 1 {
			return fmt.Errorf("file %q needs a name, positive size and entries", f.Name)
		}
		if files[f.Name] {
			return fmt.Errorf("duplicate file %q", f.Name)
		}
		files[f.Name] = true
	}
	for _, proc := range m.Processes {
		for _, th := range proc.Threads {
			for _, op := range th.Ops {
				if op.File != "" && !files[op.File] {
					return fmt.Errorf("flowop %s references undefined file %q", op.Kind, op.File)
				}
			}
		}
	}
	return nil
}

// attrSet is a parsed name=value list; flags map to "".
type attrSet map[string]string

func parseAttrs(s string) (attrSet, error) {
	attrs := make(attrSet)
	for _, part := range strings.Split(s, ",") {
		if part == "" {
			continue
		}
		if k, v, ok := strings.Cut(part, "="); ok {
			if k == "" || v == "" {
				return nil, fmt.Errorf("malformed attribute %q", part)
			}
			attrs[k] = v
		} else {
			attrs[part] = "" // flag
		}
	}
	return attrs, nil
}

func (a attrSet) str(k string) string { return a[k] }

func (a attrSet) flag(k string) bool {
	_, ok := a[k]
	return ok
}

func (a attrSet) count(k string) int {
	n, err := strconv.Atoi(a[k])
	if err != nil || n < 1 {
		return 1
	}
	return n
}

func (a attrSet) size(k string) (int64, error) {
	v, ok := a[k]
	if !ok {
		return 0, fmt.Errorf("missing attribute %q", k)
	}
	return parseSize(v)
}

// parseSize parses "4k", "3m", "10g" or a plain byte count.
func parseSize(s string) (int64, error) {
	mult := int64(1)
	lower := strings.ToLower(s)
	switch {
	case strings.HasSuffix(lower, "k"):
		mult, lower = 1<<10, lower[:len(lower)-1]
	case strings.HasSuffix(lower, "m"):
		mult, lower = 1<<20, lower[:len(lower)-1]
	case strings.HasSuffix(lower, "g"):
		mult, lower = 1<<30, lower[:len(lower)-1]
	}
	n, err := strconv.ParseInt(lower, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

// parseDuration parses "10us", "2ms", "1s".
func parseDuration(s string) (simclock.Time, error) {
	mult := simclock.Microsecond
	lower := strings.ToLower(s)
	switch {
	case strings.HasSuffix(lower, "us"):
		mult, lower = simclock.Microsecond, lower[:len(lower)-2]
	case strings.HasSuffix(lower, "ms"):
		mult, lower = simclock.Millisecond, lower[:len(lower)-2]
	case strings.HasSuffix(lower, "s"):
		mult, lower = simclock.Second, lower[:len(lower)-1]
	}
	n, err := strconv.ParseInt(lower, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	return simclock.Time(n) * mult, nil
}
