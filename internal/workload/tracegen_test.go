package workload

import (
	"testing"

	"vscsistats/internal/core"
	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/trace"
	"vscsistats/internal/vscsi"
)

func newTraceTestDisk(t *testing.T) (*simclock.Engine, *vscsi.Disk, *core.Collector) {
	t.Helper()
	eng := simclock.NewEngine()
	col := core.NewCollector("vm", "d0")
	col.Enable()
	backend := vscsi.BackendFunc(func(r *vscsi.Request, done func(scsi.Status, scsi.Sense)) {
		svc := 200*simclock.Microsecond + simclock.Time(r.Cmd.Bytes()*int64(simclock.Second)/(100<<20))
		eng.After(svc, func(simclock.Time) { done(scsi.StatusGood, scsi.Sense{}) })
	})
	disk := vscsi.NewDisk(eng, backend, vscsi.DiskConfig{
		VM: "vm", Name: "d0", CapacitySectors: 1 << 18,
	})
	disk.AddObserver(col)
	return eng, disk, col
}

func traceFixture(n int) []trace.Record {
	recs := trace.Synthesize(21, n)
	// One block-I/O substream, as a vscsim disk would get (the collector
	// only bins block I/O, so keeping it pure makes accounting exact).
	return trace.Filter(recs, trace.And(trace.OnlyDisk(recs[0].VM, recs[0].Disk), trace.OnlyBlockIO))
}

// The generator re-issues the captured command stream: same op mix, same
// sizes, original relative pacing.
func TestTraceReplayDrivesDisk(t *testing.T) {
	sub := traceFixture(20000)
	eng, disk, col := newTraceTestDisk(t)
	gen := NewTraceReplay(eng, disk, TraceSpec{Name: "fixture", Records: sub})
	gen.Start()
	eng.Run()

	st := gen.Stats()
	issued := int64(len(sub)) - gen.Throttled()
	if st.Ops != issued || st.Ops == 0 {
		t.Fatalf("Ops = %d, want %d (len %d, throttled %d)", st.Ops, issued, len(sub), gen.Throttled())
	}
	if st.TotalLatency <= 0 {
		t.Error("completions must accumulate latency")
	}
	snap := col.Snapshot()
	if snap.Commands != issued {
		t.Errorf("collector saw %d commands, want %d", snap.Commands, issued)
	}
	if snap.NumReads == 0 || snap.NumWrites == 0 {
		t.Errorf("replayed mix lost an op class: %d reads, %d writes", snap.NumReads, snap.NumWrites)
	}
	if gen.Loops() != 0 {
		t.Errorf("non-looping replay wrapped %d times", gen.Loops())
	}

	// The captured pacing survives: virtual time advanced to about the
	// trace's span (completions may run slightly past the last issue).
	span := simclock.Time(sub[len(sub)-1].IssueMicros-sub[0].IssueMicros) * simclock.Microsecond
	if eng.Now() < span/2 {
		t.Errorf("virtual clock %v, want at least half the trace span %v", eng.Now(), span)
	}
}

// Replay is a deterministic state machine: same records, same stream.
func TestTraceReplayDeterministic(t *testing.T) {
	sub := traceFixture(5000)
	run := func() *core.Snapshot {
		eng, disk, col := newTraceTestDisk(t)
		gen := NewTraceReplay(eng, disk, TraceSpec{Name: "fixture", Records: sub})
		gen.Start()
		eng.Run()
		return col.Snapshot()
	}
	a, b := run(), run()
	if a.Commands != b.Commands || a.ReadBytes != b.ReadBytes || a.WriteBytes != b.WriteBytes {
		t.Fatalf("two runs diverged: %+v vs %+v", a, b)
	}
	for _, m := range core.Metrics() {
		ha, hb := a.Histogram(m, core.All), b.Histogram(m, core.All)
		if ha.Total != hb.Total {
			t.Errorf("%s totals differ across runs", m)
		}
	}
}

// Loop restarts the stream so a short capture drives a long simulation,
// and Speed compresses the captured pacing.
func TestTraceReplayLoopAndSpeed(t *testing.T) {
	recs := []trace.Record{
		{IssueMicros: 0, VM: "v", Disk: "d", Op: scsi.OpRead16, LBA: 0, Blocks: 8},
		{IssueMicros: 1000, VM: "v", Disk: "d", Op: scsi.OpWrite16, LBA: 64, Blocks: 8},
	}
	eng, disk, _ := newTraceTestDisk(t)
	gen := NewTraceReplay(eng, disk, TraceSpec{Name: "tiny", Records: recs, Loop: true, Speed: 10})
	gen.Start()
	eng.RunUntil(10 * simclock.Millisecond)
	gen.Stop()
	eng.Run()
	if gen.Loops() < 10 {
		t.Errorf("10 ms at 10x over a 1 ms trace should wrap many times; got %d", gen.Loops())
	}
	if gen.Stats().Ops < 20 {
		t.Errorf("Ops = %d", gen.Stats().Ops)
	}
}

// Commands captured on a bigger disk wrap into this disk's capacity
// instead of failing validation.
func TestTraceReplayMapsOversizeLBA(t *testing.T) {
	recs := []trace.Record{
		{IssueMicros: 0, VM: "v", Disk: "d", Op: scsi.OpRead16, LBA: 1 << 40, Blocks: 8},
		{IssueMicros: 10, VM: "v", Disk: "d", Op: scsi.OpWrite16, LBA: (1 << 18) - 4, Blocks: 8},
	}
	eng, disk, _ := newTraceTestDisk(t)
	gen := NewTraceReplay(eng, disk, TraceSpec{Name: "big", Records: recs})
	gen.Start()
	eng.Run()
	st := gen.Stats()
	if st.Ops != 2 || st.Errors != 0 {
		t.Fatalf("stats: %+v", st)
	}
}
