package workload

import "vscsistats/internal/trace"

// The fleet personality mix: the workload population of a synthetic
// datacenter. The paper characterizes a handful of hand-picked workloads;
// a fleet-scale story needs the opposite — thousands of VMs drawn from a
// skewed population where most volumes are nearly idle and a heavy tail
// carries most of the traffic (the shape the Alibaba cloud block-storage
// study measured). Each personality is an open-loop PacedSpec template;
// Weight sets its share of a generated inventory and BaseIOPS its mean
// arrival rate at intensity 1.
//
// The personalities are deliberately separable by the environment-
// independent metrics classification uses (§3.7: I/O length, seek
// distance, outstanding I/Os, read fraction), so a catalog built from
// them can re-identify a VM's personality from its merged fleet view.

// FleetPersonality is one named class in a datacenter workload population.
type FleetPersonality struct {
	// Name identifies the personality, e.g. "oltp".
	Name string
	// Weight is the personality's relative share of a generated inventory.
	Weight int
	// BaseIOPS is the mean burst-arrival rate at intensity 1.
	BaseIOPS float64
	// BlockBytes, ReadPct, RandomPct and Burst shape the access mix (see
	// PacedSpec).
	BlockBytes int64
	ReadPct    int
	RandomPct  int
	Burst      int
	// Trace, when non-empty, makes this a trace-backed personality: VMs
	// replay this captured command stream (TraceReplay, looping, pacing
	// scaled by intensity) instead of a synthetic PacedSpec, so real
	// public-trace tenants flow through the fleet path next to synthetic
	// ones. The paced fields above are ignored for such a personality.
	Trace []trace.Record
}

// fleetPersonalities is the built-in population, ordered hot to cold in
// identity: small-block transactional through near-idle developer VMs.
var fleetPersonalities = []FleetPersonality{
	// Transactional database: 8K random, read-mostly, paired bursts.
	{Name: "oltp", Weight: 15, BaseIOPS: 1.5, BlockBytes: 8 << 10, ReadPct: 70, RandomPct: 100, Burst: 2},
	// Web/content serving: 16K mostly-random reads.
	{Name: "webserver", Weight: 20, BaseIOPS: 0.8, BlockBytes: 16 << 10, ReadPct: 95, RandomPct: 80, Burst: 1},
	// Log/ingest tenant: 4K sequential write-dominant appends in bursts —
	// the write-heavy cloud-volume class the 2007 workload set lacked.
	{Name: "logger", Weight: 15, BaseIOPS: 2.0, BlockBytes: 4 << 10, ReadPct: 5, RandomPct: 0, Burst: 4},
	// Analytics scan: 64K random reads in deep bursts.
	{Name: "analytics", Weight: 6, BaseIOPS: 0.5, BlockBytes: 64 << 10, ReadPct: 90, RandomPct: 100, Burst: 8},
	// Backup/streaming: 256K sequential reads.
	{Name: "backup", Weight: 4, BaseIOPS: 0.3, BlockBytes: 256 << 10, ReadPct: 100, RandomPct: 0, Burst: 1},
	// Developer/idle VM: the near-idle mass most of a fleet is made of.
	{Name: "devbox", Weight: 40, BaseIOPS: 0.05, BlockBytes: 4 << 10, ReadPct: 50, RandomPct: 50, Burst: 1},
}

// FleetPersonalities returns the built-in datacenter workload population.
// The slice is a copy; callers may reorder or reweight it.
func FleetPersonalities() []FleetPersonality {
	out := make([]FleetPersonality, len(fleetPersonalities))
	copy(out, fleetPersonalities)
	return out
}

// FleetPersonality returns the named built-in personality.
func FleetPersonalityByName(name string) (FleetPersonality, bool) {
	for _, p := range fleetPersonalities {
		if p.Name == name {
			return p, true
		}
	}
	return FleetPersonality{}, false
}

// TraceSpec instantiates a trace-backed personality as a replay spec:
// intensity becomes the pacing multiplier, so a hot tenant replays its
// capture proportionally faster.
func (fp FleetPersonality) TraceSpec(intensity float64) TraceSpec {
	if intensity <= 0 {
		intensity = 1
	}
	return TraceSpec{
		Name:    fp.Name,
		Records: fp.Trace,
		Loop:    true,
		Speed:   intensity,
	}
}

// PacedSpec instantiates a synthetic personality as an open-loop access
// spec at the given intensity (a per-VM rate multiplier; the inventory
// generator draws it heavy-tailed) with the given RNG seed.
func (fp FleetPersonality) PacedSpec(seed int64, intensity float64) PacedSpec {
	if intensity <= 0 {
		intensity = 1
	}
	return PacedSpec{
		Name:       fp.Name,
		BlockBytes: fp.BlockBytes,
		ReadPct:    fp.ReadPct,
		RandomPct:  fp.RandomPct,
		IOPS:       fp.BaseIOPS * intensity,
		Burst:      fp.Burst,
		Seed:       seed,
	}
}
