package workload

import (
	"testing"

	"vscsistats/internal/analysis"
	"vscsistats/internal/core"
	"vscsistats/internal/simclock"
)

// characterize runs gen against a fresh rig and returns the snapshot.
func characterize(t *testing.T, setup func(r *wlRig) Generator, dur simclock.Time) *core.Snapshot {
	t.Helper()
	r := newWLRig(t, simclock.Millisecond, 1<<24)
	gen := setup(r)
	gen.Start()
	r.eng.RunUntil(dur)
	gen.Stop()
	return r.col.Snapshot()
}

func TestSynthReproducesIometerShape(t *testing.T) {
	// Characterize a known workload...
	original := characterize(t, func(r *wlRig) Generator {
		return NewIometer(r.eng, r.disk, EightKRandomRead())
	}, 2*simclock.Second)

	// ...synthesize from its histograms alone...
	r := newWLRig(t, simclock.Millisecond, 1<<24)
	sy, err := NewSynth(r.eng, r.disk, original, 99)
	if err != nil {
		t.Fatal(err)
	}
	sy.Start()
	r.eng.RunUntil(2 * simclock.Second)
	sy.Stop()
	clone := r.col.Snapshot()
	if clone.Commands < 100 {
		t.Fatalf("synth generated only %d commands", clone.Commands)
	}

	// ...and compare shapes: length must match exactly (all 8K), seek
	// distance and read fraction closely.
	if d := analysis.Distance(original.IOLength[core.All], clone.IOLength[core.All]); d > 0.01 {
		t.Errorf("length distribution distance = %.3f", d)
	}
	if d := analysis.Distance(original.SeekDistance[core.All], clone.SeekDistance[core.All]); d > 0.15 {
		t.Errorf("seek distribution distance = %.3f", d)
	}
	if got, want := clone.ReadFraction(), original.ReadFraction(); got < want-0.05 || got > want+0.05 {
		t.Errorf("read fraction %.2f, want ~%.2f", got, want)
	}
}

func TestSynthSequentialStaysSequential(t *testing.T) {
	original := characterize(t, func(r *wlRig) Generator {
		return NewIometer(r.eng, r.disk, EightKSeqRead())
	}, simclock.Second)
	r := newWLRig(t, simclock.Millisecond, 1<<24)
	sy, err := NewSynth(r.eng, r.disk, original, 5)
	if err != nil {
		t.Fatal(err)
	}
	sy.Start()
	r.eng.RunUntil(simclock.Second)
	sy.Stop()
	clone := r.col.Snapshot()
	seq := binCount(clone, core.MetricSeekDistance, core.All, "2") +
		binCount(clone, core.MetricSeekDistance, core.All, "0")
	if frac := float64(seq) / float64(clone.SeekDistance[core.All].Total); frac < 0.95 {
		t.Errorf("synthesized sequential fraction = %.2f", frac)
	}
}

func TestSynthInterarrivalPacing(t *testing.T) {
	// A 1-deep iometer at 1ms latency arrives every ~1ms; the synthetic
	// stream must keep roughly that rate.
	original := characterize(t, func(r *wlRig) Generator {
		spec := EightKRandomRead()
		spec.Outstanding = 1
		return NewIometer(r.eng, r.disk, spec)
	}, 2*simclock.Second)
	r := newWLRig(t, simclock.Millisecond, 1<<24)
	sy, err := NewSynth(r.eng, r.disk, original, 6)
	if err != nil {
		t.Fatal(err)
	}
	sy.Start()
	r.eng.RunUntil(2 * simclock.Second)
	sy.Stop()
	origRate := float64(original.Commands) / 2
	cloneRate := float64(r.col.Snapshot().Commands) / 2
	if cloneRate < origRate/2 || cloneRate > origRate*2 {
		t.Errorf("synth rate %.0f/s vs original %.0f/s", cloneRate, origRate)
	}
}

func TestSynthRejectsEmptySnapshot(t *testing.T) {
	r := newWLRig(t, simclock.Millisecond, 1<<24)
	col := core.NewCollector("x", "y")
	col.Enable()
	if _, err := NewSynth(r.eng, r.disk, col.Snapshot(), 1); err == nil {
		t.Error("empty snapshot should be rejected")
	}
	if _, err := NewSynth(r.eng, r.disk, nil, 1); err == nil {
		t.Error("nil snapshot should be rejected")
	}
}

func TestSamplerRespectsBins(t *testing.T) {
	// All mass in one bin: samples stay within its range.
	h := core.NewCollector("v", "d")
	h.Enable()
	_ = h
	s := characterize(t, func(r *wlRig) Generator {
		return NewIometer(r.eng, r.disk, FourKSeqRead(4))
	}, simclock.Second)
	sm, err := newSampler(s.IOLength[core.All])
	if err != nil {
		t.Fatal(err)
	}
	rng := simclock.NewRand(3)
	for i := 0; i < 1000; i++ {
		v := sm.sample(rng)
		if v <= 2048 || v > 4096 {
			t.Fatalf("sample %d outside the 4K bin", v)
		}
	}
}
