package workload

import (
	"fmt"
	"math/rand"

	"vscsistats/internal/fs"
	"vscsistats/internal/simclock"
)

// Filebench interprets a Model against a filesystem: every process/thread
// instance becomes an independent state machine looping over its flowops,
// exactly the open/synchronized flow structure §4.1 describes.
type Filebench struct {
	eng   *simclock.Engine
	fsys  fs.FS
	model *Model
	seed  int64

	files   map[string][]*fs.File // fileset entries (len 1 for plain files)
	threads []*fbThread
	running bool
	stats   Stats
}

// NewFilebench prepares an interpreter; call Setup to create the model's
// files, then Start.
func NewFilebench(eng *simclock.Engine, fsys fs.FS, model *Model, seed int64) *Filebench {
	return &Filebench{eng: eng, fsys: fsys, model: model, seed: seed,
		files: make(map[string][]*fs.File)}
}

// Name implements Generator.
func (fb *Filebench) Name() string { return "filebench/" + fb.fsys.Name() }

// Setup creates and logically fills the model's files.
func (fb *Filebench) Setup() error {
	for _, decl := range fb.model.Files {
		entries := make([]*fs.File, decl.Entries)
		for i := range entries {
			name := decl.Name
			if decl.Entries > 1 {
				name = fmt.Sprintf("%s/%05d", decl.Name, i)
			}
			f, err := fb.fsys.Create(name, decl.Size)
			if err != nil {
				return fmt.Errorf("filebench setup: %w", err)
			}
			// Mark the file as logically full so random reads anywhere in
			// the extent are valid, without simulating the fill I/O.
			f.Prefill()
			entries[i] = f
		}
		fb.files[decl.Name] = entries
	}
	id := 0
	for _, proc := range fb.model.Processes {
		for pi := 0; pi < proc.Instances; pi++ {
			for _, th := range proc.Threads {
				for ti := 0; ti < th.Instances; ti++ {
					fb.threads = append(fb.threads, &fbThread{
						fb:  fb,
						ops: th.Ops,
						rng: simclock.NewRand(fb.seed + int64(id)*7919),
					})
					id++
				}
			}
		}
	}
	return nil
}

// Start launches every thread.
func (fb *Filebench) Start() {
	fb.running = true
	for _, th := range fb.threads {
		th := th
		fb.eng.After(0, func(simclock.Time) { th.step(0) })
	}
}

// Stop ceases issuing new flowops.
func (fb *Filebench) Stop() { fb.running = false }

// Stats implements Generator.
func (fb *Filebench) Stats() Stats { return fb.stats }

// fbThread executes its flowop list in a loop.
type fbThread struct {
	fb      *Filebench
	ops     []FlowOp
	rng     *rand.Rand
	cursors map[string]int64      // per-file sequential cursor
	nextOK  map[int]simclock.Time // per-flowop rate-limit release time
}

func (t *fbThread) step(opIdx int) {
	if !t.fb.running {
		return
	}
	if opIdx >= len(t.ops) {
		opIdx = 0
	}
	op := t.ops[opIdx]
	next := func() { t.step(opIdx + 1) }
	// Rate throttle: defer the flowop until its next token time.
	if op.Rate > 0 {
		if t.nextOK == nil {
			t.nextOK = make(map[int]simclock.Time)
		}
		period := simclock.Second / simclock.Time(op.Rate)
		now := t.fb.eng.Now()
		if release := t.nextOK[opIdx]; release > now {
			t.fb.eng.At(release, func(simclock.Time) { t.run(op, opIdx, next) })
			t.nextOK[opIdx] = release + period
			return
		}
		t.nextOK[opIdx] = now + period
	}
	t.run(op, opIdx, next)
}

// run executes one flowop now.
func (t *fbThread) run(op FlowOp, opIdx int, next func()) {
	start := t.fb.eng.Now()
	account := func(bytes int64) func(error) {
		return func(err error) {
			t.fb.stats.Ops++
			t.fb.stats.Bytes += bytes
			t.fb.stats.TotalLatency += t.fb.eng.Now() - start
			if err != nil {
				t.fb.stats.Errors++
			}
			next()
		}
	}
	switch op.Kind {
	case "delay":
		d := op.Delay
		if op.Exponential {
			d = simclock.Time(t.rng.ExpFloat64() * float64(op.Delay))
		}
		t.fb.eng.After(d, func(simclock.Time) { next() })
	case "sync":
		t.fb.fsys.Sync(func(error) { next() })
	case "read":
		f := t.pick(op)
		f.Read(t.offset(op, f), op.IOSize, account(op.IOSize))
	case "write":
		f := t.pick(op)
		f.Write(t.offset(op, f), op.IOSize, op.Dsync, account(op.IOSize))
	case "append":
		f := t.pick(op)
		// Wrap a full log: real Filebench recreates the logfile; we reuse
		// the extent from the start, which preserves the sequential
		// pattern.
		if f.Size()+op.IOSize > f.Extent() {
			f.Truncate(0)
		}
		f.Append(op.IOSize, op.Dsync, account(op.IOSize))
	}
}

// pick selects the flowop's target: the single file, or a uniformly random
// fileset entry per execution (Filebench's fileset semantics).
func (t *fbThread) pick(op FlowOp) *fs.File {
	entries := t.fb.files[op.File]
	if len(entries) == 1 {
		return entries[0]
	}
	return entries[t.rng.Intn(len(entries))]
}

// offset picks the flowop's file offset: uniform random (aligned to the I/O
// size) or the thread's sequential cursor.
func (t *fbThread) offset(op FlowOp, f *fs.File) int64 {
	limit := f.Size()
	if limit < op.IOSize {
		return 0
	}
	if op.Random {
		slots := limit / op.IOSize
		return t.rng.Int63n(slots) * op.IOSize
	}
	if t.cursors == nil {
		t.cursors = make(map[string]int64)
	}
	cur := t.cursors[f.Name()]
	if cur+op.IOSize > limit {
		cur = 0
	}
	t.cursors[f.Name()] = cur + op.IOSize
	return cur
}

// OLTPModel returns the Filebench OLTP personality used in §4.1: an
// Oracle-style mix of random 4 KB table reads and writes with a sequential
// 4 KB redo-log stream, "total filesize is 10GB, logfilesize is 1GB".
// Thread counts are scaled from Filebench's defaults to keep simulated runs
// tractable while preserving the read/write/log mix.
func OLTPModel(datafileBytes, logfileBytes int64) *Model {
	src := fmt.Sprintf(`
# Filebench OLTP personality (scaled)
define file name=datafile,size=%d
define file name=logfile,size=%d
define process name=shadow,instances=1 {
  thread name=reader,instances=20 {
    flowop read name=dbread,file=datafile,iosize=4k,random,dsync
    flowop delay name=think,value=10ms
  }
}
define process name=dbwriter,instances=1 {
  thread name=writer,instances=10 {
    flowop write name=dbwrite,file=datafile,iosize=4k,random,dsync
    flowop delay name=lull,value=10ms
  }
}
define process name=lgwr,instances=1 {
  thread name=logger,instances=1 {
    flowop append name=logwrite,file=logfile,iosize=4k,dsync
    flowop delay name=commit,value=2ms
  }
}
run 120
`, datafileBytes, logfileBytes)
	return MustParseModel(src)
}
