package workload

import "fmt"

// Additional Filebench personalities beyond OLTP — the model language makes
// new workloads a matter of writing a model file, which is Filebench's
// whole point ("several model files are included with the Filebench
// distribution", §4.1). Like OLTPModel, thread counts are scaled for
// simulation while preserving each personality's characteristic mix.

// WebServerModel emulates the webserver.f personality: many threads
// reading whole files from a document fileset (random file per request,
// sequential within the file) plus a shared access log taking small
// synchronous appends.
func WebServerModel(docSetBytes int64) *Model {
	entries := int64(200)
	src := fmt.Sprintf(`
# Filebench webserver personality (scaled)
define fileset name=docset,entries=%d,filesize=%d
define file name=weblog,size=%d
define process name=httpd,instances=1 {
  thread name=worker,instances=25 {
    flowop read name=readdoc1,file=docset,iosize=16k,random
    flowop read name=readdoc2,file=docset,iosize=16k
    flowop read name=readdoc3,file=docset,iosize=16k
    flowop append name=weblogwrite,file=weblog,iosize=8k,dsync
    flowop delay name=keepalive,value=5ms
  }
}
run 60
`, entries, docSetBytes/entries, docSetBytes/20)
	return MustParseModel(src)
}

// VarmailModel emulates the varmail.f personality (a mail spool): small
// whole-file reads and many small synchronous appends with frequent syncs —
// the classic fsync-heavy metadata workload.
func VarmailModel(spoolBytes int64) *Model {
	src := fmt.Sprintf(`
# Filebench varmail personality (scaled)
define file name=spool,size=%d
define process name=mail,instances=1 {
  thread name=deliver,instances=8 {
    flowop append name=newmail,file=spool,iosize=8k,dsync
    flowop sync name=fsync1
    flowop delay name=think1,value=4ms
  }
  thread name=reader,instances=8 {
    flowop read name=readmail,file=spool,iosize=8k,random
    flowop delay name=think2,value=4ms
  }
}
run 60
`, spoolBytes)
	return MustParseModel(src)
}
