package workload

import (
	"fmt"

	"vscsistats/internal/fs"
	"vscsistats/internal/simclock"
)

// FileCopyConfig parameterizes the large-file-copy workload of §4.3. The
// decisive difference between Windows XP and Vista is the copy engine's
// transfer size: "the copy application in Microsoft Windows XP Pro is
// issuing I/Os of size 64K whereas in Microsoft Vista Enterprise, I/Os are
// primarily 1MB in size."
type FileCopyConfig struct {
	// FileBytes is the size of the file being copied.
	FileBytes int64
	// ChunkBytes is the copy engine's transfer size (64 KB on XP, 1 MB on
	// Vista).
	ChunkBytes int64
	// Pipeline is the number of chunks in flight (read-ahead/write-behind
	// depth of the copy engine).
	Pipeline int
	// Loop restarts the copy when it finishes (for fixed-duration runs).
	Loop bool
}

// XPCopyConfig returns the Windows XP profile for a copy of the given size.
func XPCopyConfig(fileBytes int64) FileCopyConfig {
	return FileCopyConfig{FileBytes: fileBytes, ChunkBytes: 64 << 10, Pipeline: 2, Loop: true}
}

// VistaCopyConfig returns the Windows Vista profile.
func VistaCopyConfig(fileBytes int64) FileCopyConfig {
	return FileCopyConfig{FileBytes: fileBytes, ChunkBytes: 1 << 20, Pipeline: 2, Loop: true}
}

// FileCopy copies a source file to a destination file through a chunked
// pipeline: each in-flight slot reads a source chunk and then writes it to
// the destination, so the device sees alternating bursts of large
// sequential reads and writes separated by the src→dst seek.
type FileCopy struct {
	cfg  FileCopyConfig
	eng  *simclock.Engine
	fsys fs.FS

	src, dst *fs.File
	next     int64 // next chunk offset to read
	inFlight int
	copies   int64
	running  bool
	stats    Stats
}

// NewFileCopy prepares a copy on the given filesystem.
func NewFileCopy(eng *simclock.Engine, fsys fs.FS, cfg FileCopyConfig) *FileCopy {
	if cfg.ChunkBytes <= 0 || cfg.FileBytes < cfg.ChunkBytes || cfg.Pipeline <= 0 {
		panic("workload: invalid file copy config")
	}
	return &FileCopy{cfg: cfg, eng: eng, fsys: fsys}
}

// Name implements Generator.
func (c *FileCopy) Name() string { return fmt.Sprintf("filecopy-%dk", c.cfg.ChunkBytes>>10) }

// Copies reports how many full file copies completed.
func (c *FileCopy) Copies() int64 { return c.copies }

// Setup creates the source (full) and destination (empty) files.
func (c *FileCopy) Setup() error {
	src, err := c.fsys.Create("source.dat", c.cfg.FileBytes)
	if err != nil {
		return fmt.Errorf("filecopy setup: %w", err)
	}
	src.Prefill()
	dst, err := c.fsys.Create("copy.dat", c.cfg.FileBytes)
	if err != nil {
		return fmt.Errorf("filecopy setup: %w", err)
	}
	c.src, c.dst = src, dst
	return nil
}

// Start begins the pipelined copy.
func (c *FileCopy) Start() {
	c.running = true
	for i := 0; i < c.cfg.Pipeline; i++ {
		c.pump()
	}
}

// Stop ceases issuing new chunks.
func (c *FileCopy) Stop() { c.running = false }

// Stats implements Generator.
func (c *FileCopy) Stats() Stats { return c.stats }

// pump advances one pipeline slot: read the next source chunk, write it to
// the destination, repeat.
func (c *FileCopy) pump() {
	if !c.running {
		return
	}
	if c.next+c.cfg.ChunkBytes > c.cfg.FileBytes {
		if c.inFlight == 0 {
			c.copies++
			if !c.cfg.Loop {
				c.running = false
				return
			}
			c.next = 0
			for i := 0; i < c.cfg.Pipeline; i++ {
				c.pump()
			}
		}
		return
	}
	off := c.next
	c.next += c.cfg.ChunkBytes
	c.inFlight++
	start := c.eng.Now()
	c.src.Read(off, c.cfg.ChunkBytes, func(err error) {
		if err != nil {
			c.stats.Errors++
		}
		// Copy writes are flushed promptly by the copy engine's
		// write-behind; model them as synchronous chunk writes.
		c.dst.Write(off, c.cfg.ChunkBytes, true, func(err error) {
			if err != nil {
				c.stats.Errors++
			}
			c.inFlight--
			c.stats.Ops++
			c.stats.Bytes += c.cfg.ChunkBytes
			c.stats.TotalLatency += c.eng.Now() - start
			c.pump()
		})
	})
}
