// Package workload implements the I/O load generators behind the paper's
// evaluation: a Filebench-style model language with the OLTP personality
// (§4.1), a DBT-2/TPC-C database engine model over a buffer pool and WAL
// (§4.2), the Windows large-file-copy pipelines (§4.3), and an
// Iometer-style synthetic generator (§5).
//
// Generators are deterministic state machines driven by the simulation
// engine: each outstanding operation's completion schedules the next, so a
// given seed reproduces the same I/O stream exactly.
package workload

import (
	"fmt"

	"vscsistats/internal/simclock"
)

// Generator is a runnable workload.
type Generator interface {
	// Name identifies the workload for reports.
	Name() string
	// Start begins issuing I/O; Stop ceases issuing new operations
	// (in-flight operations complete normally).
	Start()
	Stop()
	// Stats reports progress so far.
	Stats() Stats
}

// Stats summarizes a generator's completed work.
type Stats struct {
	Ops          int64
	Bytes        int64
	Errors       int64
	TotalLatency simclock.Time // sum over completed ops
}

// MeanLatency returns the average operation latency.
func (s Stats) MeanLatency() simclock.Time {
	if s.Ops == 0 {
		return 0
	}
	return s.TotalLatency / simclock.Time(s.Ops)
}

// Rate returns operations per second over the given elapsed virtual time.
func (s Stats) Rate(elapsed simclock.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(s.Ops) / elapsed.Seconds()
}

// Throughput returns bytes per second over the elapsed virtual time.
func (s Stats) Throughput(elapsed simclock.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(s.Bytes) / elapsed.Seconds()
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("%d ops, %d bytes, %d errors, mean latency %v",
		s.Ops, s.Bytes, s.Errors, s.MeanLatency())
}
