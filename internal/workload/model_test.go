package workload

import (
	"strings"
	"testing"

	"vscsistats/internal/simclock"
)

func TestParseModelOLTPShape(t *testing.T) {
	m := OLTPModel(10<<30, 1<<30)
	if len(m.Files) != 2 || m.Files[0].Name != "datafile" || m.Files[0].Size != 10<<30 {
		t.Fatalf("files: %+v", m.Files)
	}
	if len(m.Processes) != 3 {
		t.Fatalf("processes: %+v", m.Processes)
	}
	if m.RunSeconds != 120 {
		t.Errorf("RunSeconds = %d", m.RunSeconds)
	}
	readers := m.Processes[0].Threads[0]
	if readers.Instances != 20 || len(readers.Ops) != 2 {
		t.Errorf("reader thread: %+v", readers)
	}
	if op := readers.Ops[0]; op.Kind != "read" || !op.Random || !op.Dsync || op.IOSize != 4096 {
		t.Errorf("read op: %+v", op)
	}
	if op := readers.Ops[1]; op.Kind != "delay" || op.Delay != 10*simclock.Millisecond {
		t.Errorf("delay op: %+v", op)
	}
	logger := m.Processes[2].Threads[0]
	if logger.Ops[0].Kind != "append" || logger.Ops[0].File != "logfile" {
		t.Errorf("logger op: %+v", logger.Ops[0])
	}
}

func TestParseModelErrors(t *testing.T) {
	cases := []struct {
		src, wantErr string
	}{
		{"", "no processes"},
		{"bogus statement", "unknown statement"},
		{"define gizmo name=x", "unknown define kind"},
		{"define file name=x", `missing attribute "size"`},
		{"define file name=x,size=zork\ndefine process name=p {\n}", "bad size"},
		{"define process name=p {", "unclosed block"},
		{"flowop read name=x", "outside a thread"},
		{"define process name=p {\nthread name=t {\nflowop juggle\n}\n}", "unknown flowop"},
		{"define process name=p {\nthread name=t {\nflowop read name=x\n}\n}", "needs file="},
		{"define process name=p {\nthread name=t {\nflowop delay name=x\n}\n}", "needs value="},
		{"define process name=p {\nthread name=t {\nflowop read file=nope,iosize=4k\n}\n}", "undefined file"},
		{"define file name=a,size=1k\ndefine file name=a,size=1k\ndefine process name=p {\n}", "duplicate file"},
		{"run zero\ndefine process name=p {\n}", "bad run duration"},
		{"thread name=t {", "outside a process"},
		{"define file name=x,size=4k,=bad\ndefine process name=p {\n}", "malformed attribute"},
	}
	for _, c := range cases {
		_, err := ParseModel(c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("ParseModel(%q) err = %v, want containing %q", c.src, err, c.wantErr)
		}
	}
}

func TestParseModelLineNumbers(t *testing.T) {
	_, err := ParseModel("define file name=a,size=1k\n\nbogus\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("err = %v, want line 3", err)
	}
}

func TestParseModelComments(t *testing.T) {
	m, err := ParseModel(`
# a comment
define file name=a,size=1k # trailing comment
define process name=p,instances=2 {
  thread name=t,instances=3 {
    flowop write name=w,file=a,iosize=512,dsync
  }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if m.Processes[0].Instances != 2 || m.Processes[0].Threads[0].Instances != 3 {
		t.Errorf("instances: %+v", m.Processes[0])
	}
}

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"512": 512, "4k": 4096, "4K": 4096, "3m": 3 << 20, "10g": 10 << 30,
	}
	for in, want := range cases {
		got, err := parseSize(in)
		if err != nil || got != want {
			t.Errorf("parseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "k", "-4k", "0", "4q"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q) should fail", bad)
		}
	}
}

func TestParseDuration(t *testing.T) {
	cases := map[string]simclock.Time{
		"10us": 10 * simclock.Microsecond,
		"2ms":  2 * simclock.Millisecond,
		"1s":   simclock.Second,
		"5":    5 * simclock.Microsecond, // bare numbers are microseconds
	}
	for in, want := range cases {
		got, err := parseDuration(in)
		if err != nil || got != want {
			t.Errorf("parseDuration(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseDuration("xs"); err == nil {
		t.Error("parseDuration(xs) should fail")
	}
}

func TestModelRoundTripInstancesDefault(t *testing.T) {
	m, err := ParseModel(`
define file name=a,size=1m
define process name=p {
  thread name=t {
    flowop read name=r,file=a,iosize=4k,random
  }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if m.Processes[0].Instances != 1 || m.Processes[0].Threads[0].Instances != 1 {
		t.Error("missing instances should default to 1")
	}
}

func TestWebServerModelShape(t *testing.T) {
	m := WebServerModel(1 << 30)
	if len(m.Files) != 2 || m.Files[1].Name != "weblog" {
		t.Fatalf("files: %+v", m.Files)
	}
	ops := m.Processes[0].Threads[0].Ops
	if len(ops) != 5 || ops[0].Kind != "read" || ops[3].Kind != "append" || !ops[3].Dsync {
		t.Errorf("ops: %+v", ops)
	}
}

func TestVarmailModelShape(t *testing.T) {
	m := VarmailModel(256 << 20)
	if len(m.Processes[0].Threads) != 2 {
		t.Fatalf("threads: %+v", m.Processes[0].Threads)
	}
	deliver := m.Processes[0].Threads[0]
	if deliver.Ops[1].Kind != "sync" {
		t.Errorf("varmail must fsync: %+v", deliver.Ops)
	}
}

func TestFlowOpRateAttribute(t *testing.T) {
	m, err := ParseModel(`
define file name=a,size=1m
define process name=p {
  thread name=t {
    flowop read name=r,file=a,iosize=4k,random,rate=100
  }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if m.Processes[0].Threads[0].Ops[0].Rate != 100 {
		t.Errorf("rate: %+v", m.Processes[0].Threads[0].Ops[0])
	}
	if _, err := ParseModel(`
define file name=a,size=1m
define process name=p {
  thread name=t {
    flowop read name=r,file=a,iosize=4k,rate=zero
  }
}
`); err == nil {
		t.Error("bad rate should fail")
	}
}

func TestFilesetDeclaration(t *testing.T) {
	m, err := ParseModel(`
define fileset name=docs,entries=50,filesize=64k
define process name=p {
  thread name=t {
    flowop read name=r,file=docs,iosize=16k,random
  }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if m.Files[0].Entries != 50 || m.Files[0].Size != 64<<10 {
		t.Errorf("fileset decl: %+v", m.Files[0])
	}
	if _, err := ParseModel("define fileset name=x,entries=3\ndefine process name=p {\n}"); err == nil {
		t.Error("fileset without filesize should fail")
	}
}

func TestExponentialDelayFlag(t *testing.T) {
	m := MustParseModel(`
define file name=a,size=1m
define process name=p {
  thread name=t {
    flowop read name=r,file=a,iosize=4k,random
    flowop delay name=d,value=10ms,exponential
  }
}
`)
	if !m.Processes[0].Threads[0].Ops[1].Exponential {
		t.Error("exponential flag not parsed")
	}
}
