package workload

import (
	"fmt"
	"math/rand"

	"vscsistats/internal/core"
	"vscsistats/internal/histogram"
	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

// Synth replays a *characterization* rather than a trace: given a
// collector snapshot, it generates an I/O stream whose size, seek-distance,
// inter-arrival and read/write distributions match the histograms. This
// closes the loop the paper's related work opens — "using synthetic
// workloads, such as Iometer, to model applications is another well-known
// technique. However, that requires detailed knowledge of the
// characteristics of the workload being simulated" (§6) — the online
// histograms *are* that knowledge, so a measured workload can be
// re-generated elsewhere without shipping a trace.
type Synth struct {
	eng  *simclock.Engine
	disk *vscsi.Disk
	rng  *rand.Rand

	readFrac     float64
	length       *sampler
	seek         *sampler
	arrival      *sampler
	arrivalScale float64

	lastEnd uint64
	running bool
	stats   Stats
}

// NewSynth builds a generator from a snapshot. It fails if the snapshot
// lacks the distributions needed (no block I/O was observed).
func NewSynth(eng *simclock.Engine, disk *vscsi.Disk, s *core.Snapshot, seed int64) (*Synth, error) {
	if s == nil || s.Commands == 0 {
		return nil, fmt.Errorf("workload: snapshot holds no block I/O to synthesize from")
	}
	length, err := newSampler(s.IOLength[core.All])
	if err != nil {
		return nil, fmt.Errorf("workload: length distribution: %w", err)
	}
	seek, err := newSampler(s.SeekDistance[core.All])
	if err != nil {
		// A single-command snapshot has no seek samples; degenerate to
		// sequential.
		seek = nil
	}
	arrival, err := newSampler(s.Interarrival[core.All])
	arrivalScale := 1.0
	if err != nil {
		arrival = nil
	} else if am := arrival.mean(); am > 0 {
		// Uniform-within-bin sampling biases the mean upward when the
		// mass sits at a bin's low edge; the snapshot carries the exact
		// mean, so rescale gaps to preserve the arrival *rate* exactly.
		arrivalScale = s.Interarrival[core.All].Mean() / am
	}
	return &Synth{
		eng:          eng,
		disk:         disk,
		rng:          simclock.NewRand(seed),
		readFrac:     s.ReadFraction(),
		length:       length,
		seek:         seek,
		arrival:      arrival,
		arrivalScale: arrivalScale,
		lastEnd:      disk.CapacitySectors() / 2, // start mid-disk
	}, nil
}

// Name implements Generator.
func (sy *Synth) Name() string { return "synth" }

// Start begins generating; the stream is open-loop, paced purely by the
// inter-arrival distribution.
func (sy *Synth) Start() {
	sy.running = true
	sy.eng.After(0, func(simclock.Time) { sy.step() })
}

// Stop implements Generator.
func (sy *Synth) Stop() { sy.running = false }

// Stats implements Generator.
func (sy *Synth) Stats() Stats { return sy.stats }

func (sy *Synth) step() {
	if !sy.running {
		return
	}
	// Size: sampled within the histogram bin, rounded to whole sectors.
	bytes := sy.length.sample(sy.rng)
	if bytes < 512 {
		bytes = 512
	}
	blocks := uint32((bytes + 511) / 512)

	// Position: previous end plus a sampled signed seek distance, clamped
	// into the disk.
	var lba uint64
	delta := int64(1)
	if sy.seek != nil {
		delta = sy.seek.sample(sy.rng)
	}
	pos := int64(sy.lastEnd) + delta
	capacity := int64(sy.disk.CapacitySectors())
	for pos < 0 {
		pos += capacity
	}
	if pos+int64(blocks) > capacity {
		pos = pos % (capacity - int64(blocks))
	}
	lba = uint64(pos)
	sy.lastEnd = lba + uint64(blocks) - 1

	cmd := scsi.Write(lba, blocks)
	if sy.rng.Float64() < sy.readFrac {
		cmd = scsi.Read(lba, blocks)
	}
	start := sy.eng.Now()
	if _, err := sy.disk.Issue(cmd, func(r *vscsi.Request) {
		sy.stats.Ops++
		sy.stats.Bytes += cmd.Bytes()
		sy.stats.TotalLatency += sy.eng.Now() - start
		if r.Status != scsi.StatusGood {
			sy.stats.Errors++
		}
	}); err != nil {
		sy.stats.Errors++
	}

	gap := simclock.Millisecond
	if sy.arrival != nil {
		us := float64(sy.arrival.sample(sy.rng)) * sy.arrivalScale
		gap = simclock.Time(us) * simclock.Microsecond
		if gap < simclock.Microsecond {
			gap = simclock.Microsecond
		}
	}
	sy.eng.After(gap, func(simclock.Time) { sy.step() })
}

// sampler draws values from a histogram snapshot: a bin is chosen with
// probability proportional to its count, then a value uniform within the
// bin's (lo, hi] range — the best reconstruction the binned data permits.
type sampler struct {
	snap  *histogram.Snapshot
	cum   []int64
	total int64
}

func newSampler(s *histogram.Snapshot) (*sampler, error) {
	if s == nil || s.Total == 0 {
		return nil, fmt.Errorf("empty histogram")
	}
	sm := &sampler{snap: s, cum: make([]int64, len(s.Counts))}
	var run int64
	for i, c := range s.Counts {
		run += c
		sm.cum[i] = run
	}
	sm.total = run
	return sm, nil
}

// mean is the sampler's analytic expected value (the midpoint of each
// bin's effective range weighted by its count).
func (sm *sampler) mean() float64 {
	var sum float64
	for bin, c := range sm.snap.Counts {
		if c == 0 {
			continue
		}
		lo, hi := sm.effectiveRange(bin)
		sum += float64(c) * (float64(lo+1) + float64(hi)) / 2
	}
	return sum / float64(sm.total)
}

func (sm *sampler) effectiveRange(bin int) (lo, hi int64) {
	lo, hi = sm.snap.BinRange(bin)
	if bin == 0 && sm.snap.Min > lo {
		lo = sm.snap.Min - 1
	}
	if bin == len(sm.snap.Counts)-1 && sm.snap.Max < hi {
		hi = sm.snap.Max
	}
	return lo, hi
}

func (sm *sampler) sample(rng *rand.Rand) int64 {
	r := rng.Int63n(sm.total)
	bin := 0
	for sm.cum[bin] <= r {
		bin++
	}
	lo, hi := sm.effectiveRange(bin)
	if hi <= lo+1 {
		return hi
	}
	return lo + 1 + rng.Int63n(hi-lo)
}
