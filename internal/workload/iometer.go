package workload

import (
	"fmt"
	"math/rand"

	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

// AccessSpec is an Iometer-style access specification (§5.1): block size,
// read and random percentages, and the number of outstanding I/Os to keep in
// flight against a raw virtual disk.
type AccessSpec struct {
	// Name labels the spec, e.g. "4KB Sequential Read".
	Name string
	// BlockBytes is the transfer size.
	BlockBytes int64
	// ReadPct is the percentage of operations that are reads (0–100).
	ReadPct int
	// RandomPct is the percentage of operations at a random offset; the
	// rest continue sequentially (0–100).
	RandomPct int
	// Outstanding is the I/O depth maintained.
	Outstanding int
	// RegionSectors restricts the workload to the first N sectors of the
	// disk (0 = whole disk), matching the paper's "separate 6 GB virtual
	// disks".
	RegionSectors uint64
	// Timeout aborts commands still outstanding after this long, the way
	// a guest SCSI driver's error handler would (0 = never). Aborted
	// commands count as errors and immediately refill the window.
	Timeout simclock.Time
	// Seed drives offset and op-type selection.
	Seed int64
}

// FourKSeqRead is the paper's Table 2 microbenchmark pattern: "we used the
// 4KB Sequential Read workload pattern ... small sizes are the worst case"
// for per-I/O overhead.
func FourKSeqRead(outstanding int) AccessSpec {
	return AccessSpec{Name: "4KB Sequential Read", BlockBytes: 4 << 10,
		ReadPct: 100, RandomPct: 0, Outstanding: outstanding, Seed: 1}
}

// EightKRandomRead and EightKSeqRead are the §5.3 multi-VM workloads: "8K
// random reads and 8K sequential reads ... In each case, 32 outstanding
// I/Os were issued."
func EightKRandomRead() AccessSpec {
	return AccessSpec{Name: "8K Random Read", BlockBytes: 8 << 10,
		ReadPct: 100, RandomPct: 100, Outstanding: 32, Seed: 2}
}

// EightKSeqRead is the sequential counterpart of EightKRandomRead.
func EightKSeqRead() AccessSpec {
	return AccessSpec{Name: "8K Sequential Read", BlockBytes: 8 << 10,
		ReadPct: 100, RandomPct: 0, Outstanding: 32, Seed: 3}
}

// Iometer drives a raw virtual disk with an access specification,
// maintaining a constant number of outstanding commands: every completion
// immediately issues the next I/O, saturating the target like the original
// tool ("it performs I/O operations in order to stress the system").
type Iometer struct {
	spec AccessSpec
	eng  *simclock.Engine
	disk *vscsi.Disk
	rng  *rand.Rand

	cursor  uint64
	running bool
	stats   Stats
}

// NewIometer prepares a generator against a raw virtual disk.
func NewIometer(eng *simclock.Engine, disk *vscsi.Disk, spec AccessSpec) *Iometer {
	if spec.BlockBytes <= 0 || spec.BlockBytes%512 != 0 {
		panic("workload: Iometer block size must be a positive multiple of 512")
	}
	if spec.Outstanding <= 0 {
		panic("workload: Iometer needs outstanding >= 1")
	}
	if spec.ReadPct < 0 || spec.ReadPct > 100 || spec.RandomPct < 0 || spec.RandomPct > 100 {
		panic("workload: Iometer percentages must be 0-100")
	}
	return &Iometer{spec: spec, eng: eng, disk: disk, rng: simclock.NewRand(spec.Seed)}
}

// Name implements Generator.
func (im *Iometer) Name() string { return fmt.Sprintf("iometer/%s", im.spec.Name) }

// Start issues the initial window of outstanding I/Os as one burst through
// the batched vSCSI path: the window arrives at a single virtual instant
// either way, and IssueBatch lets the observation layer process it with one
// observer dispatch and one stream-mutex acquisition. For the asynchronous
// storage backends the burst is bit-identical to issuing the window in a
// loop; thereafter every completion refills the window one command at a
// time, exactly like the original tool.
func (im *Iometer) Start() {
	im.running = true
	cmds := make([]scsi.Command, im.spec.Outstanding)
	for i := range cmds {
		cmds[i] = im.nextCmd()
	}
	start := im.eng.Now()
	rs, err := im.disk.IssueBatch(cmds, func(r *vscsi.Request) {
		im.complete(r, start)
	})
	if err != nil {
		// The loop path would have failed each issue individually.
		im.stats.Errors += int64(len(cmds))
		return
	}
	if im.spec.Timeout > 0 {
		for _, r := range rs {
			im.scheduleTimeout(r)
		}
	}
}

// Stop ceases issuing; in-flight I/Os complete normally.
func (im *Iometer) Stop() { im.running = false }

// Stats implements Generator.
func (im *Iometer) Stats() Stats { return im.stats }

func (im *Iometer) region() uint64 {
	r := im.spec.RegionSectors
	if r == 0 || r > im.disk.CapacitySectors() {
		r = im.disk.CapacitySectors()
	}
	return r
}

// nextCmd draws the next command from the access specification.
func (im *Iometer) nextCmd() scsi.Command {
	blocks := uint32(im.spec.BlockBytes / 512)
	slots := im.region() / uint64(blocks)
	var lba uint64
	if im.rng.Intn(100) < im.spec.RandomPct {
		lba = uint64(im.rng.Int63n(int64(slots))) * uint64(blocks)
	} else {
		if im.cursor+uint64(blocks) > im.region() {
			im.cursor = 0
		}
		lba = im.cursor
		im.cursor += uint64(blocks)
	}
	if im.rng.Intn(100) < im.spec.ReadPct {
		return scsi.Read(lba, blocks)
	}
	return scsi.Write(lba, blocks)
}

// complete accounts one finished command and refills the window.
func (im *Iometer) complete(r *vscsi.Request, start simclock.Time) {
	im.stats.Ops++
	im.stats.Bytes += im.spec.BlockBytes
	im.stats.TotalLatency += im.eng.Now() - start
	if r.Status != scsi.StatusGood {
		im.stats.Errors++
	}
	im.issue()
}

// scheduleTimeout arms the guest-driver-style abort timer for one request.
func (im *Iometer) scheduleTimeout(req *vscsi.Request) {
	im.eng.After(im.spec.Timeout, func(simclock.Time) {
		im.disk.Abort(req) // no-op if already complete
	})
}

func (im *Iometer) issue() {
	if !im.running {
		return
	}
	cmd := im.nextCmd()
	start := im.eng.Now()
	req, err := im.disk.Issue(cmd, func(r *vscsi.Request) {
		im.complete(r, start)
	})
	if err != nil {
		im.stats.Errors++
		return
	}
	if im.spec.Timeout > 0 {
		im.scheduleTimeout(req)
	}
}
