package workload

import (
	"testing"

	"vscsistats/internal/core"
	"vscsistats/internal/fs"
	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

// wlRig wires a virtual disk with a collector over a fixed-latency backend.
type wlRig struct {
	eng  *simclock.Engine
	disk *vscsi.Disk
	col  *core.Collector
}

func newWLRig(t *testing.T, latency simclock.Time, capacitySectors uint64) *wlRig {
	t.Helper()
	eng := simclock.NewEngine()
	backend := vscsi.BackendFunc(func(r *vscsi.Request, done func(scsi.Status, scsi.Sense)) {
		// Size-dependent service: fixed positioning cost plus transfer at
		// 100 MB/s, so large I/Os take proportionally longer.
		svc := latency + simclock.Time(r.Cmd.Bytes()*int64(simclock.Second)/(100<<20))
		eng.After(svc, func(simclock.Time) { done(scsi.StatusGood, scsi.Sense{}) })
	})
	disk := vscsi.NewDisk(eng, backend, vscsi.DiskConfig{
		VM: "vm", Name: "scsi0:0", CapacitySectors: capacitySectors,
	})
	col := core.NewCollector("vm", "scsi0:0")
	col.Enable()
	disk.AddObserver(col)
	return &wlRig{eng, disk, col}
}

func binCount(s *core.Snapshot, m core.Metric, cl core.Class, label string) int64 {
	h := s.Histogram(m, cl)
	for i := range h.Counts {
		if h.BinLabel(i) == label {
			return h.Counts[i]
		}
	}
	return -1
}

func TestFilebenchOLTPOnUFS(t *testing.T) {
	r := newWLRig(t, 2*simclock.Millisecond, 1<<27) // 64 GB
	ufs := fs.NewPlain(r.eng, r.disk, fs.UFSConfig())
	fb := NewFilebench(r.eng, ufs, OLTPModel(2<<30, 256<<20), 7)
	if err := fb.Setup(); err != nil {
		t.Fatal(err)
	}
	fb.Start()
	r.eng.RunUntil(10 * simclock.Second)
	fb.Stop()
	s := r.col.Snapshot()
	if s.Commands < 1000 {
		t.Fatalf("only %d commands in 10s", s.Commands)
	}
	// I/O lengths: dominated by 4 KB writes and 8 KB block reads.
	len4k := binCount(s, core.MetricIOLength, core.All, "4096")
	len8k := binCount(s, core.MetricIOLength, core.All, "8192")
	if float64(len4k+len8k)/float64(s.Commands) < 0.9 {
		t.Errorf("4K+8K = %d+%d of %d commands", len4k, len8k, s.Commands)
	}
	// Random access: far seeks dominate (spikes at histogram edges).
	sd := s.SeekDistance[core.All]
	far := sd.Counts[0] + sd.Counts[1] + sd.Counts[len(sd.Counts)-1] + sd.Counts[len(sd.Counts)-2]
	if float64(far)/float64(sd.Total) < 0.5 {
		t.Errorf("UFS OLTP should be random: far=%d of %d\n%v", far, sd.Total, sd.Counts)
	}
	// Both reads and writes present in a sane ratio.
	if s.NumReads == 0 || s.NumWrites == 0 {
		t.Errorf("reads=%d writes=%d", s.NumReads, s.NumWrites)
	}
	if fb.Stats().Ops == 0 || fb.Name() != "filebench/ufs" {
		t.Errorf("generator stats: %+v name %q", fb.Stats(), fb.Name())
	}
}

func TestFilebenchOLTPOnZFSWritesSequentialAndLarge(t *testing.T) {
	r := newWLRig(t, 2*simclock.Millisecond, 1<<27)
	zcfg := fs.DefaultZFSConfig()
	zcfg.ZILBytes = 0 // isolate the txg stream for this assertion
	z := fs.NewZFS(r.eng, r.disk, zcfg)
	fb := NewFilebench(r.eng, z, OLTPModel(2<<30, 256<<20), 7)
	if err := fb.Setup(); err != nil {
		t.Fatal(err)
	}
	fb.Start()
	r.eng.RunUntil(30 * simclock.Second)
	fb.Stop()
	s := r.col.Snapshot()
	// Writes are large: dominated by the >80 KB bins.
	lw := s.IOLength[core.Writes]
	var large int64
	for i := range lw.Counts {
		lo, _ := lw.BinRange(i)
		if lo >= 65536 {
			large += lw.Counts[i]
		}
	}
	if lw.Total == 0 || float64(large)/float64(lw.Total) < 0.8 {
		t.Errorf("ZFS writes should be 80-128K: large=%d of %d\n%v", large, lw.Total, lw.Counts)
	}
	// Writes are sequential: seek distances concentrated near 1.
	sw := s.SeekDistance[core.Writes]
	seq := binCount(s, core.MetricSeekDistance, core.Writes, "2") +
		binCount(s, core.MetricSeekDistance, core.Writes, "0")
	if sw.Total == 0 || float64(seq)/float64(sw.Total) < 0.5 {
		t.Errorf("ZFS writes should be sequential: seq=%d of %d\n%v", seq, sw.Total, sw.Counts)
	}
	// Reads stay random (table lookups) and are record-sized.
	len128k := binCount(s, core.MetricIOLength, core.Reads, "131072")
	if s.IOLength[core.Reads].Total == 0 ||
		float64(len128k)/float64(s.IOLength[core.Reads].Total) < 0.8 {
		t.Errorf("ZFS reads should be 128K records:\n%v", s.IOLength[core.Reads].Counts)
	}
}

func TestDBT2EightKAndDeepWrites(t *testing.T) {
	r := newWLRig(t, 2*simclock.Millisecond, 1<<27)
	ext3 := fs.NewPlain(r.eng, r.disk, fs.Ext3Config())
	cfg := DefaultDBT2Config()
	cfg.DatabaseBytes = 4 << 30
	cfg.WALBytes = 256 << 20
	cfg.CheckpointInterval = 5 * simclock.Second
	d := NewDBT2(r.eng, ext3, cfg)
	if err := d.Setup(); err != nil {
		t.Fatal(err)
	}
	d.Start()
	r.eng.RunUntil(20 * simclock.Second)
	d.Stop()
	s := r.col.Snapshot()
	if s.Commands < 1000 {
		t.Fatalf("only %d commands", s.Commands)
	}
	// Figure 4(b): "The workload is almost exclusively 8K for both reads
	// and writes." (Journal commits are 4K and a small minority.)
	len8k := binCount(s, core.MetricIOLength, core.All, "8192")
	if float64(len8k)/float64(s.Commands) < 0.75 {
		t.Errorf("8K fraction = %d of %d\n%v", len8k, s.Commands, s.IOLength[core.All].Counts)
	}
	// Figure 4(c): writes arrive with deep queues (checkpointer bursts at
	// depth 32), reads shallow (most of the time no burst is running).
	wOIO := s.Outstanding[core.Writes]
	rOIO := s.Outstanding[core.Reads]
	if got := wOIO.Percentile(75); got < 16 {
		t.Errorf("write OIO p75 = %d, want >= 16 (depth-32 bursts)", got)
	}
	if wOIO.Max < 30 {
		t.Errorf("write OIO max = %d, want ~32", wOIO.Max)
	}
	if got := rOIO.Percentile(50); got > 12 {
		t.Errorf("read OIO p50 = %d, want shallow (<= 12)", got)
	}
	// Figure 4(a): bursts of spatial locality among writes (the hot
	// region): a visible share of write seeks within 5000 sectors.
	var near int64
	sw := s.SeekDistance[core.Writes]
	for i := range sw.Counts {
		lo, hi := sw.BinRange(i)
		if lo >= -5001 && hi <= 5000 {
			near += sw.Counts[i]
		}
	}
	if frac := float64(near) / float64(sw.Total); frac < 0.08 {
		t.Errorf("write locality fraction = %.2f, want >= 0.08 (paper: ~33%% within 5000)", frac)
	}
	txns, byType := d.Transactions()
	if txns == 0 || byType["new-order"] == 0 {
		t.Errorf("transactions: %d %v", txns, byType)
	}
}

func TestFileCopyXPvsVistaSizes(t *testing.T) {
	for _, tc := range []struct {
		cfg      fs.PlainConfig
		copyCfg  FileCopyConfig
		wantSize string
	}{
		{fs.NTFSXPConfig(), XPCopyConfig(64 << 20), "65536"},
		{fs.NTFSVistaConfig(), VistaCopyConfig(64 << 20), ">524288"},
	} {
		r := newWLRig(t, simclock.Millisecond, 1<<27)
		ntfs := fs.NewPlain(r.eng, r.disk, tc.cfg)
		fc := NewFileCopy(r.eng, ntfs, tc.copyCfg)
		if err := fc.Setup(); err != nil {
			t.Fatal(err)
		}
		fc.Start()
		r.eng.RunUntil(10 * simclock.Second)
		fc.Stop()
		s := r.col.Snapshot()
		if s.Commands == 0 {
			t.Fatalf("%s: no I/O", tc.cfg.Type)
		}
		dom := binCount(s, core.MetricIOLength, core.All, tc.wantSize)
		if float64(dom)/float64(s.Commands) < 0.8 {
			t.Errorf("%s: bin %s holds %d of %d\n%v", tc.cfg.Type, tc.wantSize,
				dom, s.Commands, s.IOLength[core.All].Counts)
		}
	}
}

func TestFileCopyVistaFewerCommandsThanXP(t *testing.T) {
	run := func(pcfg fs.PlainConfig, ccfg FileCopyConfig) int64 {
		r := newWLRig(t, simclock.Millisecond, 1<<27)
		ntfs := fs.NewPlain(r.eng, r.disk, pcfg)
		fc := NewFileCopy(r.eng, ntfs, ccfg)
		if err := fc.Setup(); err != nil {
			t.Fatal(err)
		}
		fc.Start()
		r.eng.RunUntil(10 * simclock.Second)
		fc.Stop()
		return r.col.Snapshot().Commands
	}
	xp := run(fs.NTFSXPConfig(), XPCopyConfig(64<<20))
	vista := run(fs.NTFSVistaConfig(), VistaCopyConfig(64<<20))
	// "the number of commands is lower" for Vista (Figure 5).
	if vista*4 > xp {
		t.Errorf("vista commands %d should be <<< xp commands %d", vista, xp)
	}
}

func TestFileCopyCompletesAndLoops(t *testing.T) {
	r := newWLRig(t, 100*simclock.Microsecond, 1<<27)
	ntfs := fs.NewPlain(r.eng, r.disk, fs.NTFSXPConfig())
	fc := NewFileCopy(r.eng, ntfs, FileCopyConfig{
		FileBytes: 1 << 20, ChunkBytes: 64 << 10, Pipeline: 2, Loop: false})
	if err := fc.Setup(); err != nil {
		t.Fatal(err)
	}
	fc.Start()
	r.eng.RunUntil(20 * simclock.Second)
	if fc.Copies() != 1 {
		t.Errorf("Copies = %d, want 1 (Loop=false)", fc.Copies())
	}
	if got := fc.Stats().Ops; got != 16 {
		t.Errorf("chunk ops = %d, want 16", got)
	}
}

func TestIometerMaintainsOutstanding(t *testing.T) {
	r := newWLRig(t, simclock.Millisecond, 1<<24)
	im := NewIometer(r.eng, r.disk, FourKSeqRead(8))
	im.Start()
	if r.disk.Inflight() != 8 {
		t.Fatalf("Inflight after Start = %d, want 8", r.disk.Inflight())
	}
	r.eng.RunUntil(simclock.Second)
	im.Stop()
	r.eng.Run()
	s := r.col.Snapshot()
	// OIO at arrival is 7 for nearly every I/O after the ramp.
	oio := s.Outstanding[core.All]
	if oio.Max != 7 {
		t.Errorf("max OIO at arrival = %d, want 7", oio.Max)
	}
	// Sequential: all seeks distance 1.
	seq := binCount(s, core.MetricSeekDistance, core.All, "2")
	if float64(seq)/float64(s.SeekDistance[core.All].Total) < 0.99 {
		t.Errorf("sequential fraction too low:\n%v", s.SeekDistance[core.All].Counts)
	}
	if im.Stats().Ops < 900 {
		t.Errorf("ops = %d, want ~1000 at 1ms latency, depth 8", im.Stats().Ops)
	}
}

func TestIometerRandomSpread(t *testing.T) {
	r := newWLRig(t, simclock.Millisecond, 1<<24)
	im := NewIometer(r.eng, r.disk, EightKRandomRead())
	im.Start()
	r.eng.RunUntil(simclock.Second)
	im.Stop()
	r.eng.Run()
	s := r.col.Snapshot()
	sd := s.SeekDistance[core.All]
	far := sd.Counts[0] + sd.Counts[1] + sd.Counts[len(sd.Counts)-1] + sd.Counts[len(sd.Counts)-2]
	if float64(far)/float64(sd.Total) < 0.5 {
		t.Errorf("random spread too local:\n%v", sd.Counts)
	}
}

func TestIometerRegionRestriction(t *testing.T) {
	r := newWLRig(t, simclock.Millisecond, 1<<24)
	spec := EightKRandomRead()
	spec.RegionSectors = 4096
	im := NewIometer(r.eng, r.disk, spec)
	im.Start()
	r.eng.RunUntil(200 * simclock.Millisecond)
	im.Stop()
	r.eng.Run()
	s := r.col.Snapshot()
	// Max seek distance can't exceed the region.
	if s.SeekDistance[core.All].Max > 4096 || s.SeekDistance[core.All].Min < -4096 {
		t.Errorf("seeks escaped region: min=%d max=%d",
			s.SeekDistance[core.All].Min, s.SeekDistance[core.All].Max)
	}
}

func TestIometerWriteMix(t *testing.T) {
	r := newWLRig(t, simclock.Millisecond, 1<<24)
	im := NewIometer(r.eng, r.disk, AccessSpec{
		Name: "mix", BlockBytes: 4096, ReadPct: 50, RandomPct: 100,
		Outstanding: 4, Seed: 9})
	im.Start()
	r.eng.RunUntil(simclock.Second)
	im.Stop()
	r.eng.Run()
	s := r.col.Snapshot()
	frac := s.ReadFraction()
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("read fraction = %.2f, want ~0.5", frac)
	}
}

func TestIometerValidation(t *testing.T) {
	r := newWLRig(t, simclock.Millisecond, 1<<24)
	bad := []AccessSpec{
		{BlockBytes: 0, Outstanding: 1},
		{BlockBytes: 1000, Outstanding: 1},
		{BlockBytes: 4096, Outstanding: 0},
		{BlockBytes: 4096, Outstanding: 1, ReadPct: 200},
	}
	for i, spec := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("spec %d should panic", i)
				}
			}()
			NewIometer(r.eng, r.disk, spec)
		}()
	}
}

func TestGeneratorStatsHelpers(t *testing.T) {
	s := Stats{Ops: 100, Bytes: 400 << 10, TotalLatency: 100 * simclock.Millisecond}
	if s.MeanLatency() != simclock.Millisecond {
		t.Errorf("MeanLatency = %v", s.MeanLatency())
	}
	if got := s.Rate(simclock.Second); got != 100 {
		t.Errorf("Rate = %v", got)
	}
	if got := s.Throughput(simclock.Second); got != 400<<10 {
		t.Errorf("Throughput = %v", got)
	}
	var zero Stats
	if zero.MeanLatency() != 0 || zero.Rate(0) != 0 || zero.Throughput(-1) != 0 {
		t.Error("zero stats helpers should be 0")
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}

func TestWebServerPersonalityReadsDominate(t *testing.T) {
	r := newWLRig(t, simclock.Millisecond, 1<<27)
	ufs := fs.NewPlain(r.eng, r.disk, fs.UFSConfig())
	fb := NewFilebench(r.eng, ufs, WebServerModel(512<<20), 3)
	if err := fb.Setup(); err != nil {
		t.Fatal(err)
	}
	fb.Start()
	r.eng.RunUntil(10 * simclock.Second)
	fb.Stop()
	s := r.col.Snapshot()
	if s.Commands < 500 {
		t.Fatalf("commands: %d", s.Commands)
	}
	// The disk-level read share depends on guest cache hits; it must stay
	// at least balanced-to-read-leaning.
	if frac := s.ReadFraction(); frac < 0.5 {
		t.Errorf("webserver read fraction = %.2f, want >= 0.5", frac)
	}
}

func TestVarmailPersonalityWriteHeavySmallIOs(t *testing.T) {
	r := newWLRig(t, simclock.Millisecond, 1<<27)
	ufs := fs.NewPlain(r.eng, r.disk, fs.UFSConfig())
	fb := NewFilebench(r.eng, ufs, VarmailModel(256<<20), 3)
	if err := fb.Setup(); err != nil {
		t.Fatal(err)
	}
	fb.Start()
	r.eng.RunUntil(10 * simclock.Second)
	fb.Stop()
	s := r.col.Snapshot()
	if s.Commands < 200 {
		t.Fatalf("commands: %d", s.Commands)
	}
	if s.NumWrites == 0 || s.IOLength[core.All].Max > 64<<10 {
		t.Errorf("varmail shape: writes=%d maxIO=%d", s.NumWrites, s.IOLength[core.All].Max)
	}
	if fb.Stats().Errors != 0 {
		t.Errorf("errors: %d", fb.Stats().Errors)
	}
}

func TestFlowOpRateThrottles(t *testing.T) {
	// One thread, rate=50: ~50 reads/second regardless of device speed.
	r := newWLRig(t, 100*simclock.Microsecond, 1<<24)
	ufs := fs.NewPlain(r.eng, r.disk, fs.UFSConfig())
	m := MustParseModel(`
define file name=a,size=16m
define process name=p {
  thread name=t {
    flowop read name=rd,file=a,iosize=8k,random,rate=50
  }
}
`)
	fb := NewFilebench(r.eng, ufs, m, 4)
	if err := fb.Setup(); err != nil {
		t.Fatal(err)
	}
	fb.Start()
	r.eng.RunUntil(10 * simclock.Second)
	fb.Stop()
	ops := fb.Stats().Ops
	if ops < 400 || ops > 600 {
		t.Errorf("rate=50 over 10s produced %d ops, want ~500", ops)
	}
}

func TestIometerTimeoutAborts(t *testing.T) {
	// Device latency 50ms, timeout 10ms: every command aborts, the window
	// keeps refilling, and errors accumulate.
	r := newWLRig(t, 50*simclock.Millisecond, 1<<24)
	spec := EightKRandomRead()
	spec.Outstanding = 4
	spec.Timeout = 10 * simclock.Millisecond
	im := NewIometer(r.eng, r.disk, spec)
	im.Start()
	r.eng.RunUntil(simclock.Second)
	im.Stop()
	r.eng.Run()
	st := im.Stats()
	if st.Errors == 0 {
		t.Fatal("no aborts recorded")
	}
	if st.Errors < st.Ops/2 {
		t.Errorf("expected mostly aborts: %d errors of %d ops", st.Errors, st.Ops)
	}
	// Mean observed latency is bounded by the timeout (plus scheduling).
	if got := st.MeanLatency(); got > 12*simclock.Millisecond {
		t.Errorf("mean latency %v exceeds timeout bound", got)
	}
}

func TestExponentialDelaysSpreadInterarrivals(t *testing.T) {
	// Fixed delays give a near-constant inter-arrival histogram;
	// exponential delays with the same mean spread it widely.
	run := func(flag string) *core.Snapshot {
		r := newWLRig(t, 10*simclock.Microsecond, 1<<24)
		ufs := fs.NewPlain(r.eng, r.disk, fs.UFSConfig())
		m := MustParseModel(`
define file name=a,size=64m
define process name=p {
  thread name=t {
    flowop read name=rd,file=a,iosize=8k,random
    flowop delay name=d,value=5ms` + flag + `
  }
}
`)
		fb := NewFilebench(r.eng, ufs, m, 11)
		if err := fb.Setup(); err != nil {
			t.Fatal(err)
		}
		fb.Start()
		r.eng.RunUntil(20 * simclock.Second)
		fb.Stop()
		return r.col.Snapshot()
	}
	fixed := run("")
	expo := run(",exponential")
	fIA := fixed.Interarrival[core.All]
	eIA := expo.Interarrival[core.All]
	fixedSpread := fIA.Max - fIA.Min
	expoSpread := eIA.Max - eIA.Min
	if expoSpread <= fixedSpread {
		t.Errorf("exponential spread %d should exceed fixed spread %d", expoSpread, fixedSpread)
	}
	// Means stay comparable (same 5ms budget).
	if eIA.Mean() < fIA.Mean()/2 || eIA.Mean() > fIA.Mean()*2 {
		t.Errorf("means diverged: fixed %.0f vs exponential %.0f", fIA.Mean(), eIA.Mean())
	}
}
