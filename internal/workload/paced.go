package workload

import (
	"fmt"
	"math/rand"

	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

// Paced is the open-loop counterpart of Iometer: instead of saturating the
// device with a constant window of outstanding commands, it issues bursts at
// a target mean rate with exponentially distributed gaps (a Poisson arrival
// process) and does not wait for completions. That is the shape of a
// multi-tenant cloud datacenter — the Alibaba block-storage study found
// per-volume load heavy-tailed with most volumes nearly idle — and it is
// what lets a simulator multiplex a thousand hosts into one process: a
// closed-loop generator's event rate is set by device latency, an open-loop
// generator's by its spec.
//
// Like every generator here, Paced is a deterministic state machine: the
// same seed produces the same arrival instants and the same command stream.

// PacedSpec describes an open-loop arrival process against a raw virtual
// disk.
type PacedSpec struct {
	// Name labels the spec, e.g. "oltp".
	Name string
	// BlockBytes is the transfer size (multiple of 512).
	BlockBytes int64
	// ReadPct is the percentage of operations that are reads (0-100).
	ReadPct int
	// RandomPct is the percentage of operations at a random offset; the
	// rest continue sequentially (0-100).
	RandomPct int
	// IOPS is the mean arrival rate of bursts per virtual second.
	IOPS float64
	// Burst is the number of commands issued per arrival (default 1).
	// Bursts arrive at one virtual instant through the batched issue path,
	// so outstanding-I/O histograms see the burst shape.
	Burst int
	// MaxOutstanding caps commands in flight (default 64). An arrival that
	// would exceed the cap is skipped and counted (Throttled), modelling a
	// guest queue overflowing rather than an unbounded simulator heap.
	MaxOutstanding int
	// RegionSectors restricts the workload to the first N sectors
	// (0 = whole disk).
	RegionSectors uint64
	// Seed drives arrival times, offsets and op-type selection.
	Seed int64
}

// Paced drives a raw virtual disk with a PacedSpec.
type Paced struct {
	spec PacedSpec
	eng  *simclock.Engine
	disk *vscsi.Disk
	rng  *rand.Rand

	cursor    uint64
	running   bool
	stats     Stats
	throttled int64
}

// NewPaced prepares an open-loop generator against a raw virtual disk.
func NewPaced(eng *simclock.Engine, disk *vscsi.Disk, spec PacedSpec) *Paced {
	if spec.BlockBytes <= 0 || spec.BlockBytes%512 != 0 {
		panic("workload: Paced block size must be a positive multiple of 512")
	}
	if spec.IOPS <= 0 {
		panic("workload: Paced needs IOPS > 0")
	}
	if spec.ReadPct < 0 || spec.ReadPct > 100 || spec.RandomPct < 0 || spec.RandomPct > 100 {
		panic("workload: Paced percentages must be 0-100")
	}
	if spec.Burst <= 0 {
		spec.Burst = 1
	}
	if spec.MaxOutstanding <= 0 {
		spec.MaxOutstanding = 64
	}
	return &Paced{spec: spec, eng: eng, disk: disk, rng: simclock.NewRand(spec.Seed)}
}

// Name implements Generator.
func (p *Paced) Name() string { return fmt.Sprintf("paced/%s", p.spec.Name) }

// Start schedules the first arrival; Stop ceases scheduling (in-flight
// commands complete normally).
func (p *Paced) Start() {
	if p.running {
		return
	}
	p.running = true
	p.eng.After(p.nextGap(), p.arrive)
}

// Stop implements Generator.
func (p *Paced) Stop() { p.running = false }

// Stats implements Generator.
func (p *Paced) Stats() Stats { return p.stats }

// Throttled reports arrivals skipped at the outstanding-I/O cap.
func (p *Paced) Throttled() int64 { return p.throttled }

// nextGap draws the next exponential inter-arrival gap, floored at one
// virtual nanosecond so the engine always advances.
func (p *Paced) nextGap() simclock.Time {
	gap := simclock.Time(p.rng.ExpFloat64() / p.spec.IOPS * float64(simclock.Second))
	if gap < 1 {
		gap = 1
	}
	return gap
}

// arrive issues one burst (unless capped) and schedules the next arrival.
func (p *Paced) arrive(simclock.Time) {
	if !p.running {
		return
	}
	if p.disk.Inflight()+p.spec.Burst > p.spec.MaxOutstanding {
		p.throttled++
	} else {
		p.issueBurst()
	}
	p.eng.After(p.nextGap(), p.arrive)
}

// issueBurst issues Burst commands at this instant; a single command goes
// through the plain issue path, larger bursts through the batched one.
func (p *Paced) issueBurst() {
	start := p.eng.Now()
	if p.spec.Burst == 1 {
		if _, err := p.disk.Issue(p.nextCmd(), func(r *vscsi.Request) {
			p.complete(r, start)
		}); err != nil {
			p.stats.Errors++
		}
		return
	}
	cmds := make([]scsi.Command, p.spec.Burst)
	for i := range cmds {
		cmds[i] = p.nextCmd()
	}
	if _, err := p.disk.IssueBatch(cmds, func(r *vscsi.Request) {
		p.complete(r, start)
	}); err != nil {
		p.stats.Errors += int64(len(cmds))
	}
}

func (p *Paced) region() uint64 {
	r := p.spec.RegionSectors
	if r == 0 || r > p.disk.CapacitySectors() {
		r = p.disk.CapacitySectors()
	}
	return r
}

// nextCmd draws the next command from the access mix.
func (p *Paced) nextCmd() scsi.Command {
	blocks := uint32(p.spec.BlockBytes / 512)
	slots := p.region() / uint64(blocks)
	if slots == 0 {
		slots = 1
	}
	var lba uint64
	if p.rng.Intn(100) < p.spec.RandomPct {
		lba = uint64(p.rng.Int63n(int64(slots))) * uint64(blocks)
	} else {
		if p.cursor+uint64(blocks) > p.region() {
			p.cursor = 0
		}
		lba = p.cursor
		p.cursor += uint64(blocks)
	}
	if p.rng.Intn(100) < p.spec.ReadPct {
		return scsi.Read(lba, blocks)
	}
	return scsi.Write(lba, blocks)
}

// complete accounts one finished command.
func (p *Paced) complete(r *vscsi.Request, start simclock.Time) {
	p.stats.Ops++
	p.stats.Bytes += p.spec.BlockBytes
	p.stats.TotalLatency += p.eng.Now() - start
	if r.Status != scsi.StatusGood {
		p.stats.Errors++
	}
}
