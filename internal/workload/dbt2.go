package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"vscsistats/internal/fs"
	"vscsistats/internal/simclock"
)

// DBT2Config parameterizes the DBT-2/PostgreSQL model (§4.2): "DBT-2 was
// setup with a scaling factor of 250 (warehouses) with 50 connections ...
// the database was sized at 50GB ... shared_buffers to 2000 and
// checkpoint_segments to 12."
type DBT2Config struct {
	// Warehouses is the TPC-C scaling factor.
	Warehouses int
	// Connections is the number of concurrent database connections.
	Connections int
	// DatabaseBytes sizes the table heap file.
	DatabaseBytes int64
	// WALBytes sizes the write-ahead-log file.
	WALBytes int64
	// SharedBuffers is the buffer pool size in 8 KB pages (PostgreSQL's
	// shared_buffers).
	SharedBuffers int
	// BgWriterDepth is the write concurrency of the background
	// writer/checkpointer — the reason Figure 4(c) shows writes arriving
	// with ~32 already outstanding.
	BgWriterDepth int
	// CheckpointInterval spaces checkpoint cycles; the resulting dirty-page
	// bursts drive the ±15% I/O rate variation of Figure 4(d).
	CheckpointInterval simclock.Time
	// ThinkTime is the per-transaction keying/think delay.
	ThinkTime simclock.Time
	// HotPages sizes the "recent orders" region: TPC-C inserts and updates
	// cluster near the append frontier of the orders/new-order tables,
	// which is where Figure 4(a)'s bursts of write locality come from.
	HotPages int64
	// HotFraction is the share of page accesses directed at the hot
	// region.
	HotFraction float64
	// BgRound is the background writer's cadence (PostgreSQL's
	// bgwriter_delay): every round it issues up to BgRoundPages dirty
	// pages as one burst at BgWriterDepth concurrency. Burst-at-depth is
	// why Figure 4(c) shows writes "always issuing around 32
	// simultaneously" while reads stay shallow between bursts.
	BgRound      simclock.Time
	BgRoundPages int
	// Seed drives transaction mix and page selection.
	Seed int64
}

// DefaultDBT2Config mirrors the paper's setup, with sizes scaled to keep a
// two-minute simulation tractable while preserving the miss-dominated
// buffer-pool ratio (16 MB of buffers against a multi-GB heap).
func DefaultDBT2Config() DBT2Config {
	return DBT2Config{
		Warehouses:         250,
		Connections:        50,
		DatabaseBytes:      8 << 30,
		WALBytes:           1 << 30,
		SharedBuffers:      2000,
		BgWriterDepth:      32,
		CheckpointInterval: 30 * simclock.Second,
		ThinkTime:          100 * simclock.Millisecond,
		HotPages:           512,
		HotFraction:        0.35,
		BgRound:            200 * simclock.Millisecond,
		BgRoundPages:       96,
		Seed:               1,
	}
}

const dbPageBytes = 8 << 10 // PostgreSQL page size

// txnProfile describes one TPC-C transaction type's page footprint.
type txnProfile struct {
	name    string
	weight  int // per mille
	reads   int // heap pages touched
	dirties int // heap pages dirtied
}

// tpccMix is the standard TPC-C transaction mix.
var tpccMix = []txnProfile{
	{"new-order", 450, 10, 8},
	{"payment", 430, 4, 3},
	{"order-status", 40, 12, 0},
	{"delivery", 40, 20, 15},
	{"stock-level", 40, 60, 0},
}

// DBT2 models PostgreSQL running the TPC-C-derived DBT-2 workload: worker
// connections read heap pages through a small buffer pool, commit via
// sequential WAL appends, and a background writer destages dirty pages with
// fixed concurrency.
type DBT2 struct {
	cfg  DBT2Config
	eng  *simclock.Engine
	fsys fs.FS
	rng  *rand.Rand

	heap *fs.File
	wal  *fs.File

	pool     *bufferPool
	dirty    []int64 // dirty heap page numbers, FIFO
	dirtySet map[int64]bool
	hotBase  int64 // moving frontier of the hot (recent-orders) region
	bgActive int
	bgBudget int // pages remaining in the current bgwriter round
	bgTick   *simclock.Ticker
	running  bool
	stats    Stats
	txns     int64
	byType   map[string]int64
	ckptTick *simclock.Ticker
	inCkpt   bool
}

// NewDBT2 prepares the model; Setup creates its files.
func NewDBT2(eng *simclock.Engine, fsys fs.FS, cfg DBT2Config) *DBT2 {
	if cfg.Connections <= 0 || cfg.SharedBuffers <= 0 || cfg.BgWriterDepth <= 0 {
		panic("workload: invalid DBT2 config")
	}
	return &DBT2{
		cfg: cfg, eng: eng, fsys: fsys,
		rng:      simclock.NewRand(cfg.Seed),
		pool:     newBufferPool(cfg.SharedBuffers),
		dirtySet: make(map[int64]bool),
		byType:   make(map[string]int64),
	}
}

// Name implements Generator.
func (d *DBT2) Name() string { return "dbt2" }

// Transactions reports committed transactions, total and by type.
func (d *DBT2) Transactions() (int64, map[string]int64) { return d.txns, d.byType }

// Setup creates the heap and WAL files.
func (d *DBT2) Setup() error {
	heap, err := d.fsys.Create("pgdata", d.cfg.DatabaseBytes)
	if err != nil {
		return fmt.Errorf("dbt2 setup: %w", err)
	}
	heap.Prefill()
	wal, err := d.fsys.Create("pg_xlog", d.cfg.WALBytes)
	if err != nil {
		return fmt.Errorf("dbt2 setup: %w", err)
	}
	d.heap, d.wal = heap, wal
	return nil
}

// Start launches the worker connections, background writer and checkpointer.
func (d *DBT2) Start() {
	d.running = true
	for c := 0; c < d.cfg.Connections; c++ {
		c := c
		// Stagger connection start to avoid a synchronized burst.
		d.eng.After(simclock.Time(c)*simclock.Millisecond, func(simclock.Time) {
			d.runTxn(simclock.NewRand(d.cfg.Seed + int64(c)*104729))
		})
	}
	if d.cfg.CheckpointInterval > 0 {
		d.ckptTick = simclock.NewTicker(d.eng, d.cfg.CheckpointInterval, func(simclock.Time) {
			// Checkpoints flush the whole backlog in page order, the way
			// the kernel writeback path submits — consecutive writes land
			// near each other, producing Figure 4(a)'s bursts of
			// locality, and the extra volume makes the I/O rate breathe
			// (Figure 4(d)).
			sort.Slice(d.dirty, func(i, j int) bool { return d.dirty[i] < d.dirty[j] })
			d.inCkpt = true
			d.bgBudget = len(d.dirty)
			d.pumpBgWriter()
		})
	}
	if d.cfg.BgRound > 0 && d.cfg.BgRoundPages > 0 {
		d.bgTick = simclock.NewTicker(d.eng, d.cfg.BgRound, func(simclock.Time) {
			if d.bgBudget < d.cfg.BgRoundPages {
				d.bgBudget = d.cfg.BgRoundPages
			}
			d.pumpBgWriter()
		})
	}
}

// Stop ceases new transactions and background writes.
func (d *DBT2) Stop() {
	d.running = false
	if d.ckptTick != nil {
		d.ckptTick.Stop()
	}
	if d.bgTick != nil {
		d.bgTick.Stop()
	}
}

// Stats implements Generator.
func (d *DBT2) Stats() Stats { return d.stats }

// runTxn executes one transaction on a connection, then schedules the next.
func (d *DBT2) runTxn(rng *rand.Rand) {
	if !d.running {
		return
	}
	prof := d.pickTxn(rng)
	start := d.eng.Now()
	pages := d.heap.Size() / dbPageBytes
	// Phase 1: read the transaction's heap pages through the buffer pool,
	// sequentially within the transaction (dependent lookups).
	var readNext func(i int)
	readNext = func(i int) {
		if i >= prof.reads {
			// Phase 2: dirty pages stay in the pool for the bgwriter; the
			// commit is a synchronous WAL append.
			for w := 0; w < prof.dirties; w++ {
				page := d.pickPage(rng, pages)
				d.pool.insert(page)
				if !d.dirtySet[page] {
					d.dirtySet[page] = true
					d.dirty = append(d.dirty, page)
				}
			}
			d.appendWAL(func() {
				d.txns++
				d.byType[prof.name]++
				d.stats.Ops++
				d.stats.TotalLatency += d.eng.Now() - start
				d.pumpBgWriter()
				d.eng.After(d.cfg.ThinkTime, func(simclock.Time) { d.runTxn(rng) })
			})
			return
		}
		page := d.pickPage(rng, pages)
		if d.pool.lookup(page) {
			readNext(i + 1)
			return
		}
		d.heap.Read(page*dbPageBytes, dbPageBytes, func(error) {
			d.pool.insert(page)
			d.stats.Bytes += dbPageBytes
			readNext(i + 1)
		})
	}
	readNext(0)
}

// pickPage selects a heap page: mostly uniform over the table space, with
// a configurable share clustered in the slowly advancing hot region.
func (d *DBT2) pickPage(rng *rand.Rand, pages int64) int64 {
	hot := d.cfg.HotPages
	if hot > 0 && rng.Float64() < d.cfg.HotFraction {
		page := d.hotBase + rng.Int63n(hot)
		// The frontier creeps forward as orders accumulate.
		if rng.Intn(64) == 0 {
			d.hotBase++
		}
		return page % pages
	}
	return rng.Int63n(pages)
}

func (d *DBT2) pickTxn(rng *rand.Rand) txnProfile {
	r := rng.Intn(1000)
	for _, p := range tpccMix {
		if r < p.weight {
			return p
		}
		r -= p.weight
	}
	return tpccMix[0]
}

// appendWAL writes one 8 KB WAL block synchronously, recycling the log.
func (d *DBT2) appendWAL(done func()) {
	if d.wal.Size()+dbPageBytes > d.wal.Extent() {
		_ = d.wal.Truncate(0)
	}
	d.wal.Append(dbPageBytes, true, func(error) { done() })
}

// pumpBgWriter keeps up to BgWriterDepth dirty-page writes in flight while
// a checkpoint cycle is draining the dirty backlog. This burst-at-depth
// behaviour is the mechanism behind PostgreSQL "always issuing around 32
// writes simultaneously" in Figure 4(c).
func (d *DBT2) pumpBgWriter() {
	if !d.running {
		return
	}
	for d.bgActive < d.cfg.BgWriterDepth && d.bgBudget > 0 && len(d.dirty) > 0 {
		page := d.dirty[0]
		d.dirty = d.dirty[1:]
		delete(d.dirtySet, page)
		d.bgActive++
		d.bgBudget--
		d.heap.Write(page*dbPageBytes, dbPageBytes, true, func(error) {
			d.bgActive--
			d.stats.Bytes += dbPageBytes
			if len(d.dirty) == 0 || d.bgBudget == 0 {
				d.inCkpt = false
			}
			d.pumpBgWriter()
		})
	}
}

// bufferPool is PostgreSQL's shared_buffers: an LRU over heap page numbers.
type bufferPool struct {
	capacity int
	pages    map[int64]int // page -> index in ring (approximation)
	ring     []int64
	pos      int
	hits     uint64
	misses   uint64
}

func newBufferPool(capacity int) *bufferPool {
	return &bufferPool{capacity: capacity, pages: make(map[int64]int)}
}

// lookup reports residency (clock-style; promotion is approximated by
// reinsertion).
func (b *bufferPool) lookup(page int64) bool {
	if _, ok := b.pages[page]; ok {
		b.hits++
		return true
	}
	b.misses++
	return false
}

// insert makes a page resident, evicting in FIFO/clock order.
func (b *bufferPool) insert(page int64) {
	if _, ok := b.pages[page]; ok {
		return
	}
	if len(b.ring) < b.capacity {
		b.pages[page] = len(b.ring)
		b.ring = append(b.ring, page)
		return
	}
	victim := b.ring[b.pos]
	delete(b.pages, victim)
	b.ring[b.pos] = page
	b.pages[page] = b.pos
	b.pos = (b.pos + 1) % b.capacity
}
