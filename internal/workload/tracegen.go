package workload

import (
	"fmt"

	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/trace"
	"vscsistats/internal/vscsi"
)

// TraceReplay drives a virtual disk with a captured command stream: each
// record is re-issued at its captured relative instant (equal-instant runs
// go through the batched issue path, so outstanding-I/O histograms see the
// captured burst shape), while completion timing comes from the simulated
// backend underneath. That separation is the point: a public trace
// (MSR Cambridge, Alibaba — see trace.Open) supplies the arrival process
// and access pattern of a real tenant, the simulator supplies the
// environment, and the paper's environment-independent metrics (§3.7)
// should then classify the replayed tenant like the original.
//
// Like every generator here, TraceReplay is a deterministic state machine:
// the same records produce the same command stream and instants.

// TraceSpec describes a trace-driven workload against a raw virtual disk.
type TraceSpec struct {
	// Name labels the workload, e.g. the trace file's basename.
	Name string
	// Records is the command stream, issue-ordered (the capture order of a
	// single-disk trace; use trace.Filter/OnlyDisk to cut one substream
	// from a multi-disk capture, or trace.NewMergeSource to interleave).
	Records []trace.Record
	// Loop restarts the stream when it runs out, separated by the trace's
	// mean inter-arrival gap, so a short capture can drive a long
	// simulation.
	Loop bool
	// Speed scales the captured pacing (2 = twice as fast; default 1).
	Speed float64
	// MaxOutstanding caps commands in flight (default 64); arrivals over
	// the cap are skipped and counted, as with Paced.
	MaxOutstanding int
}

// TraceReplay replays a TraceSpec against a raw virtual disk.
type TraceReplay struct {
	spec TraceSpec
	eng  *simclock.Engine
	disk *vscsi.Disk

	pos       int
	loopGap   simclock.Time
	running   bool
	stats     Stats
	throttled int64
	loops     int64
}

// NewTraceReplay prepares a trace-driven generator against a raw disk.
func NewTraceReplay(eng *simclock.Engine, disk *vscsi.Disk, spec TraceSpec) *TraceReplay {
	if len(spec.Records) == 0 {
		panic("workload: TraceReplay needs at least one record")
	}
	if spec.Speed <= 0 {
		spec.Speed = 1
	}
	if spec.MaxOutstanding <= 0 {
		spec.MaxOutstanding = 64
	}
	tr := &TraceReplay{spec: spec, eng: eng, disk: disk}
	// The restart gap when looping: the trace's mean inter-arrival time.
	span := spec.Records[len(spec.Records)-1].IssueMicros - spec.Records[0].IssueMicros
	if n := int64(len(spec.Records) - 1); n > 0 && span > 0 {
		tr.loopGap = tr.scaleGap(span / n)
	} else {
		tr.loopGap = simclock.Millisecond
	}
	return tr
}

// Name implements Generator.
func (tr *TraceReplay) Name() string { return fmt.Sprintf("trace/%s", tr.spec.Name) }

// Start schedules the first captured arrival; Stop ceases scheduling.
func (tr *TraceReplay) Start() {
	if tr.running {
		return
	}
	tr.running = true
	tr.eng.After(1, tr.arrive)
}

// Stop implements Generator.
func (tr *TraceReplay) Stop() { tr.running = false }

// Stats implements Generator.
func (tr *TraceReplay) Stats() Stats { return tr.stats }

// Throttled reports arrivals skipped at the outstanding-I/O cap.
func (tr *TraceReplay) Throttled() int64 { return tr.throttled }

// Loops reports how many times the stream has wrapped.
func (tr *TraceReplay) Loops() int64 { return tr.loops }

func (tr *TraceReplay) scaleGap(micros int64) simclock.Time {
	gap := simclock.Time(float64(micros) / tr.spec.Speed * float64(simclock.Microsecond))
	if gap < 1 {
		gap = 1
	}
	return gap
}

// arrive issues every record captured at this instant, then schedules the
// next captured arrival.
func (tr *TraceReplay) arrive(simclock.Time) {
	if !tr.running {
		return
	}
	recs := tr.spec.Records
	end := tr.pos + 1
	for end < len(recs) && recs[end].IssueMicros == recs[tr.pos].IssueMicros {
		end++
	}
	burst := recs[tr.pos:end]
	if tr.disk.Inflight()+len(burst) > tr.spec.MaxOutstanding {
		tr.throttled += int64(len(burst))
	} else {
		tr.issueBurst(burst)
	}

	gap := simclock.Time(0)
	if end < len(recs) {
		gap = tr.scaleGap(recs[end].IssueMicros - recs[tr.pos].IssueMicros)
		tr.pos = end
	} else if tr.spec.Loop {
		gap = tr.loopGap
		tr.pos = 0
		tr.loops++
	} else {
		tr.running = false
		return
	}
	tr.eng.After(gap, tr.arrive)
}

func (tr *TraceReplay) issueBurst(burst []trace.Record) {
	start := tr.eng.Now()
	bytes := int64(0)
	complete := func(r *vscsi.Request) {
		tr.stats.Ops++
		tr.stats.TotalLatency += tr.eng.Now() - start
		if r.Status != scsi.StatusGood {
			tr.stats.Errors++
		}
	}
	if len(burst) == 1 {
		cmd := tr.mapCmd(&burst[0])
		bytes = int64(cmd.Blocks) * 512
		if _, err := tr.disk.Issue(cmd, complete); err != nil {
			tr.stats.Errors++
			return
		}
	} else {
		cmds := make([]scsi.Command, len(burst))
		for i := range burst {
			cmds[i] = tr.mapCmd(&burst[i])
			bytes += int64(cmds[i].Blocks) * 512
		}
		if _, err := tr.disk.IssueBatch(cmds, complete); err != nil {
			tr.stats.Errors += int64(len(cmds))
			return
		}
	}
	tr.stats.Bytes += bytes
}

// mapCmd fits a captured command onto this disk's geometry: commands from
// a larger disk wrap into the capacity, preserving size and relative
// locality.
func (tr *TraceReplay) mapCmd(rec *trace.Record) scsi.Command {
	capacity := tr.disk.CapacitySectors()
	blocks := rec.Blocks
	if uint64(blocks) > capacity {
		blocks = uint32(capacity)
	}
	lba := rec.LBA
	if lba+uint64(blocks) > capacity {
		lba %= capacity - uint64(blocks) + 1
	}
	return scsi.Command{Op: rec.Op, LBA: lba, Blocks: blocks}
}
