// Package vscsi implements the virtual SCSI device layer: the hypervisor
// chokepoint through which every guest I/O flows and at which the paper's
// online characterization service observes commands.
//
// A Disk is one virtual disk of one VM. Guests issue scsi.Commands to it;
// the disk tracks in-flight commands, enforces an optional per-disk active
// queue limit (ESX "maintains a queue of pending requests per virtual
// machine for each target SCSI device"), forwards commands to a Backend (the
// physical storage model) and notifies Observers at issue and completion
// time. The stats collector (internal/core) and the trace framework
// (internal/trace) are both Observers.
package vscsi

import (
	"errors"
	"fmt"
	"sync/atomic"

	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
)

// Request is one virtual SCSI command in flight. Observers must treat a
// Request as read-only.
type Request struct {
	// ID is unique per Disk, monotonically increasing in issue order.
	ID uint64
	// VM and Disk identify the issuing virtual machine and virtual disk.
	VM, Disk string
	// Cmd is the decoded SCSI command.
	Cmd scsi.Command
	// IssueTime is the virtual time the guest issued the command.
	IssueTime simclock.Time
	// SubmitTime is when the command left the pending queue for the
	// backend; equal to IssueTime unless the active-queue limit held it.
	SubmitTime simclock.Time
	// CompleteTime is when the backend completed it (zero while in flight).
	CompleteTime simclock.Time
	// OutstandingAtIssue counts the other commands on this virtual disk
	// that had been issued but not completed when this one arrived — the
	// paper's "Outstanding I/Os" metric (§3.3).
	OutstandingAtIssue int
	// Status and Sense hold the completion result.
	Status scsi.Status
	Sense  scsi.Sense

	// done is the caller's completion callback, held on the request so
	// both the normal completion path and Abort can invoke it.
	done func(*Request)
	// aborted marks a request cancelled by the guest; the backend's late
	// completion is then discarded.
	aborted bool
	// finished marks that observers/done already ran for this request.
	finished bool
}

// Aborted reports whether the guest cancelled the command before it
// completed.
func (r *Request) Aborted() bool { return r.aborted }

// Latency is the device latency observed by the guest: issue to completion.
func (r *Request) Latency() simclock.Time { return r.CompleteTime - r.IssueTime }

// Observer is notified on the vSCSI fast path. OnIssue runs after the
// request is counted as outstanding but before it reaches the backend;
// OnComplete runs after Status, Sense and CompleteTime are final.
type Observer interface {
	OnIssue(r *Request)
	OnComplete(r *Request)
}

// BatchObserver is an optional Observer extension for bursts. When a guest
// issues several commands at one instant (Disk.IssueBatch), observers that
// implement it receive the whole burst in one OnIssueBatch call — in issue
// order, with the same read-only Request contract as OnIssue — instead of
// one OnIssue per command. That lets an observer amortize per-call costs
// (the stats collector takes its stream mutex once per burst instead of
// once per command). Observers that do not implement the extension keep
// receiving per-command OnIssue calls; the two deliveries are equivalent.
type BatchObserver interface {
	Observer
	OnIssueBatch(rs []*Request)
}

// Backend services commands on behalf of a virtual disk — in this
// repository, the storage array model. Submit must eventually invoke done
// exactly once (possibly synchronously).
type Backend interface {
	Submit(r *Request, done func(status scsi.Status, sense scsi.Sense))
}

// BackendFunc adapts a function to the Backend interface.
type BackendFunc func(r *Request, done func(status scsi.Status, sense scsi.Sense))

// Submit implements Backend.
func (f BackendFunc) Submit(r *Request, done func(status scsi.Status, sense scsi.Sense)) {
	f(r, done)
}

// ErrClosed is returned by Issue after Close.
var ErrClosed = errors.New("vscsi: disk closed")

// DiskConfig configures a virtual disk.
type DiskConfig struct {
	// VM and Name identify the disk, e.g. "oltp-vm" / "scsi0:1".
	VM, Name string
	// CapacitySectors is the disk size in 512-byte logical blocks.
	CapacitySectors uint64
	// MaxActive limits commands concurrently submitted to the backend;
	// excess commands wait in a FIFO pending queue. Zero means unlimited.
	MaxActive int
}

// Disk is a virtual SCSI disk. Queue manipulation (Issue, Abort, Close,
// AddObserver) is confined to the goroutine that owns the disk's engine,
// exactly as ESX serializes per-disk queue manipulation — but the lifetime
// counters (Inflight, Issued, Completed, Errored) are atomics, so
// monitoring goroutines (esxtop-style views, the HTTP stats service, the
// parallel multi-VM driver's control plane) may read them while the owning
// goroutine runs the simulation.
type Disk struct {
	cfg     DiskConfig
	eng     *simclock.Engine
	backend Backend

	observers []Observer

	nextID   uint64
	inflight atomic.Int64 // issued, not completed (includes pending)
	active   int          // submitted to the backend
	pending  []*Request
	closed   bool

	issued    atomic.Uint64
	completed atomic.Uint64
	errored   atomic.Uint64

	// lastSense is the most recent non-GOOD completion's sense data,
	// returned by REQUEST SENSE emulation. Owning-goroutine only.
	lastSense scsi.Sense
}

// NewDisk creates a virtual disk served by backend on engine eng.
func NewDisk(eng *simclock.Engine, backend Backend, cfg DiskConfig) *Disk {
	if cfg.CapacitySectors == 0 {
		panic("vscsi: disk capacity must be nonzero")
	}
	if backend == nil {
		panic("vscsi: nil backend")
	}
	return &Disk{cfg: cfg, eng: eng, backend: backend}
}

// VM returns the owning VM's name.
func (d *Disk) VM() string { return d.cfg.VM }

// Name returns the virtual disk's name.
func (d *Disk) Name() string { return d.cfg.Name }

// CapacitySectors returns the disk size in logical blocks.
func (d *Disk) CapacitySectors() uint64 { return d.cfg.CapacitySectors }

// Inflight returns the number of issued-but-not-completed commands.
func (d *Disk) Inflight() int { return int(d.inflight.Load()) }

// LastSense returns the most recent failed completion's sense data (zero
// if no command has failed).
func (d *Disk) LastSense() scsi.Sense { return d.lastSense }

// Issued and Completed report lifetime command counts; Errored counts
// completions with a status other than GOOD.
func (d *Disk) Issued() uint64    { return d.issued.Load() }
func (d *Disk) Completed() uint64 { return d.completed.Load() }
func (d *Disk) Errored() uint64   { return d.errored.Load() }

// AddObserver attaches an observer to the fast path.
func (d *Disk) AddObserver(o Observer) {
	d.observers = append(d.observers, o)
}

// RemoveObserver detaches a previously attached observer.
func (d *Disk) RemoveObserver(o Observer) {
	for i, cur := range d.observers {
		if cur == o {
			d.observers = append(d.observers[:i], d.observers[i+1:]...)
			return
		}
	}
}

// Close fails subsequent Issues. In-flight commands complete normally.
func (d *Disk) Close() { d.closed = true }

// Issue submits a guest command. done, if non-nil, is invoked at completion
// after observers have seen it. Issue returns the in-flight request.
//
// Commands that fail validation (e.g. out-of-range LBA) complete immediately
// with CHECK CONDITION — they still traverse the observer path, since a real
// vSCSI layer sees malformed guest commands too.
func (d *Disk) Issue(cmd scsi.Command, done func(*Request)) (*Request, error) {
	if d.closed {
		return nil, ErrClosed
	}
	r := &Request{
		ID:                 d.nextID,
		VM:                 d.cfg.VM,
		Disk:               d.cfg.Name,
		Cmd:                cmd,
		IssueTime:          d.eng.Now(),
		OutstandingAtIssue: int(d.inflight.Load()),
		done:               done,
	}
	d.nextID++
	d.inflight.Add(1)
	d.issued.Add(1)
	for _, o := range d.observers {
		o.OnIssue(r)
	}

	if cmd.Op.IsBlockIO() && cmd.LastLBA() >= d.cfg.CapacitySectors {
		d.finish(r, scsi.StatusCheckCondition, scsi.SenseLBAOutOfRange)
		return r, nil
	}

	if d.cfg.MaxActive > 0 && d.active >= d.cfg.MaxActive {
		d.pending = append(d.pending, r)
		return r, nil
	}
	d.submit(r)
	return r, nil
}

// IssueBatch submits a burst of guest commands arriving at one instant —
// e.g. a workload generator filling its outstanding window, or a guest
// driver draining its queue after an interrupt. Every command is stamped
// with the same issue time; each command's OutstandingAtIssue counts its
// batch predecessors (they are issued, not completed). Observers that
// implement BatchObserver see the burst in one call; others get the usual
// per-command OnIssue. Commands are then validated and submitted to the
// backend in order, so for backends that complete asynchronously (every
// storage model in this repository) the simulation is bit-identical to
// issuing the same commands in an immediate loop. done, if non-nil, is
// invoked at each request's completion.
func (d *Disk) IssueBatch(cmds []scsi.Command, done func(*Request)) ([]*Request, error) {
	if d.closed {
		return nil, ErrClosed
	}
	if len(cmds) == 0 {
		return nil, nil
	}
	now := d.eng.Now()
	rs := make([]*Request, len(cmds))
	for i, cmd := range cmds {
		r := &Request{
			ID:                 d.nextID,
			VM:                 d.cfg.VM,
			Disk:               d.cfg.Name,
			Cmd:                cmd,
			IssueTime:          now,
			OutstandingAtIssue: int(d.inflight.Load()),
			done:               done,
		}
		d.nextID++
		d.inflight.Add(1)
		d.issued.Add(1)
		rs[i] = r
	}
	for _, o := range d.observers {
		if bo, ok := o.(BatchObserver); ok {
			bo.OnIssueBatch(rs)
			continue
		}
		for _, r := range rs {
			o.OnIssue(r)
		}
	}
	for _, r := range rs {
		switch {
		case r.Cmd.Op.IsBlockIO() && r.Cmd.LastLBA() >= d.cfg.CapacitySectors:
			d.finish(r, scsi.StatusCheckCondition, scsi.SenseLBAOutOfRange)
		case d.cfg.MaxActive > 0 && d.active >= d.cfg.MaxActive:
			d.pending = append(d.pending, r)
		default:
			d.submit(r)
		}
	}
	return rs, nil
}

// IssueCDB decodes a raw CDB and issues it. Undecodable CDBs complete with
// CHECK CONDITION / INVALID COMMAND rather than returning an error, matching
// device behaviour.
func (d *Disk) IssueCDB(cdb []byte, done func(*Request)) (*Request, error) {
	cmd, err := scsi.Decode(cdb)
	if err != nil {
		if d.closed {
			return nil, ErrClosed
		}
		r := &Request{
			ID:                 d.nextID,
			VM:                 d.cfg.VM,
			Disk:               d.cfg.Name,
			Cmd:                scsi.Command{Op: scsi.OpCode(firstByte(cdb))},
			IssueTime:          d.eng.Now(),
			OutstandingAtIssue: int(d.inflight.Load()),
			done:               done,
		}
		d.nextID++
		d.inflight.Add(1)
		d.issued.Add(1)
		for _, o := range d.observers {
			o.OnIssue(r)
		}
		d.finish(r, scsi.StatusCheckCondition, scsi.SenseInvalidOpcode)
		return r, nil
	}
	return d.Issue(cmd, done)
}

func firstByte(b []byte) byte {
	if len(b) == 0 {
		return 0
	}
	return b[0]
}

func (d *Disk) submit(r *Request) {
	d.active++
	r.SubmitTime = d.eng.Now()
	completed := false
	d.backend.Submit(r, func(status scsi.Status, sense scsi.Sense) {
		if completed {
			panic(fmt.Sprintf("vscsi: double completion of %s request %d", d.cfg.Name, r.ID))
		}
		completed = true
		d.active--
		if r.aborted {
			// The guest already saw this command fail; drop the late
			// backend completion.
			d.drain()
			return
		}
		d.finish(r, status, sense)
		d.drain()
	})
}

func (d *Disk) finish(r *Request, status scsi.Status, sense scsi.Sense) {
	r.finished = true
	r.CompleteTime = d.eng.Now()
	r.Status = status
	r.Sense = sense
	d.inflight.Add(-1)
	d.completed.Add(1)
	if status != scsi.StatusGood {
		d.errored.Add(1)
		d.lastSense = sense
	}
	for _, o := range d.observers {
		o.OnComplete(r)
	}
	if r.done != nil {
		r.done(r)
	}
}

// Abort cancels an in-flight command: the guest sees it complete
// immediately with ABORTED COMMAND, observers included (a real vSCSI layer
// surfaces guest aborts too, and they matter for characterization — an
// abort storm is a workload signal). Returns false if the request already
// completed. The backend's eventual completion is discarded.
func (d *Disk) Abort(r *Request) bool {
	if r.finished || r.aborted {
		return false
	}
	r.aborted = true
	// If still waiting in the pending FIFO, remove it there.
	for i, p := range d.pending {
		if p == r {
			d.pending = append(d.pending[:i], d.pending[i+1:]...)
			break
		}
	}
	d.finish(r, scsi.StatusCheckCondition, scsi.Sense{
		Key: scsi.SenseAbortedCommand,
	})
	return true
}

func (d *Disk) drain() {
	for len(d.pending) > 0 && (d.cfg.MaxActive == 0 || d.active < d.cfg.MaxActive) {
		r := d.pending[0]
		d.pending = d.pending[1:]
		d.submit(r)
	}
}
