package vscsi

import (
	"testing"

	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
)

// delayBackend completes every command after a fixed virtual delay.
type delayBackend struct {
	eng   *simclock.Engine
	delay simclock.Time
}

func (b *delayBackend) Submit(r *Request, done func(scsi.Status, scsi.Sense)) {
	b.eng.After(b.delay, func(simclock.Time) { done(scsi.StatusGood, scsi.Sense{}) })
}

type recordingObserver struct {
	issued, completed []*Request
}

func (o *recordingObserver) OnIssue(r *Request)    { o.issued = append(o.issued, r) }
func (o *recordingObserver) OnComplete(r *Request) { o.completed = append(o.completed, r) }

func newTestDisk(t *testing.T, delay simclock.Time, maxActive int) (*simclock.Engine, *Disk, *recordingObserver) {
	t.Helper()
	eng := simclock.NewEngine()
	d := NewDisk(eng, &delayBackend{eng, delay}, DiskConfig{
		VM: "vm1", Name: "scsi0:0", CapacitySectors: 1 << 20, MaxActive: maxActive,
	})
	obs := &recordingObserver{}
	d.AddObserver(obs)
	return eng, d, obs
}

func TestIssueCompleteLifecycle(t *testing.T) {
	eng, d, obs := newTestDisk(t, 5*simclock.Millisecond, 0)
	var got *Request
	r, err := d.Issue(scsi.Read(100, 8), func(r *Request) { got = r })
	if err != nil {
		t.Fatal(err)
	}
	if d.Inflight() != 1 {
		t.Errorf("Inflight = %d, want 1", d.Inflight())
	}
	if r.OutstandingAtIssue != 0 {
		t.Errorf("OutstandingAtIssue = %d, want 0", r.OutstandingAtIssue)
	}
	eng.Run()
	if got == nil {
		t.Fatal("completion callback never ran")
	}
	if got.Latency() != 5*simclock.Millisecond {
		t.Errorf("Latency = %v", got.Latency())
	}
	if got.Status != scsi.StatusGood {
		t.Errorf("Status = %v", got.Status)
	}
	if d.Inflight() != 0 || d.Issued() != 1 || d.Completed() != 1 || d.Errored() != 0 {
		t.Errorf("counters: inflight=%d issued=%d completed=%d errored=%d",
			d.Inflight(), d.Issued(), d.Completed(), d.Errored())
	}
	if len(obs.issued) != 1 || len(obs.completed) != 1 {
		t.Errorf("observer saw %d/%d events", len(obs.issued), len(obs.completed))
	}
}

func TestOutstandingAtIssueCountsOthers(t *testing.T) {
	eng, d, _ := newTestDisk(t, simclock.Millisecond, 0)
	var depths []int
	for i := 0; i < 4; i++ {
		r, err := d.Issue(scsi.Read(uint64(i*8), 8), nil)
		if err != nil {
			t.Fatal(err)
		}
		depths = append(depths, r.OutstandingAtIssue)
	}
	eng.Run()
	for i, want := range []int{0, 1, 2, 3} {
		if depths[i] != want {
			t.Errorf("depths = %v", depths)
			break
		}
	}
}

func TestLBAOutOfRangeChecksCondition(t *testing.T) {
	eng, d, obs := newTestDisk(t, simclock.Millisecond, 0)
	var got *Request
	_, err := d.Issue(scsi.Read(d.CapacitySectors(), 1), func(r *Request) { got = r })
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got.Status != scsi.StatusCheckCondition || got.Sense != scsi.SenseLBAOutOfRange {
		t.Errorf("got status=%v sense=%v", got.Status, got.Sense)
	}
	if d.Errored() != 1 {
		t.Errorf("Errored = %d", d.Errored())
	}
	// Even a failed command must traverse the observer path.
	if len(obs.issued) != 1 || len(obs.completed) != 1 {
		t.Error("observer missed the failed command")
	}
}

func TestLastSectorAccepted(t *testing.T) {
	eng, d, _ := newTestDisk(t, simclock.Millisecond, 0)
	var got *Request
	d.Issue(scsi.Read(d.CapacitySectors()-8, 8), func(r *Request) { got = r })
	eng.Run()
	if got.Status != scsi.StatusGood {
		t.Errorf("read of final extent failed: %v %v", got.Status, got.Sense)
	}
}

func TestMaxActiveQueuesExcess(t *testing.T) {
	eng, d, _ := newTestDisk(t, simclock.Millisecond, 2)
	completions := make([]simclock.Time, 0, 4)
	for i := 0; i < 4; i++ {
		d.Issue(scsi.Read(uint64(i*8), 8), func(r *Request) {
			completions = append(completions, r.CompleteTime)
		})
	}
	if d.Inflight() != 4 {
		t.Errorf("Inflight = %d, want 4 (pending count as outstanding)", d.Inflight())
	}
	eng.Run()
	// First two complete at 1ms, the queued two at 2ms.
	want := []simclock.Time{1, 1, 2, 2}
	for i := range want {
		if completions[i] != want[i]*simclock.Millisecond {
			t.Fatalf("completions = %v", completions)
		}
	}
	// SubmitTime of the queued requests must trail IssueTime.
}

func TestQueuedRequestSubmitTime(t *testing.T) {
	eng, d, obs := newTestDisk(t, simclock.Millisecond, 1)
	d.Issue(scsi.Read(0, 8), nil)
	d.Issue(scsi.Read(8, 8), nil)
	eng.Run()
	second := obs.completed[1]
	if second.IssueTime != 0 || second.SubmitTime != simclock.Millisecond {
		t.Errorf("IssueTime=%v SubmitTime=%v", second.IssueTime, second.SubmitTime)
	}
	// Guest-observed latency includes queueing.
	if second.Latency() != 2*simclock.Millisecond {
		t.Errorf("Latency = %v, want 2ms", second.Latency())
	}
}

func TestIssueCDBValid(t *testing.T) {
	eng, d, _ := newTestDisk(t, simclock.Millisecond, 0)
	cdb, _ := scsi.Encode(scsi.Write(64, 16))
	var got *Request
	if _, err := d.IssueCDB(cdb, func(r *Request) { got = r }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !got.Cmd.Op.IsWrite() || got.Cmd.LBA != 64 || got.Cmd.Blocks != 16 {
		t.Errorf("decoded %+v", got.Cmd)
	}
}

func TestIssueCDBInvalidOpcode(t *testing.T) {
	eng, d, obs := newTestDisk(t, simclock.Millisecond, 0)
	var got *Request
	if _, err := d.IssueCDB([]byte{0xEE, 0, 0, 0, 0, 0}, func(r *Request) { got = r }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got.Status != scsi.StatusCheckCondition || got.Sense != scsi.SenseInvalidOpcode {
		t.Errorf("status=%v sense=%v", got.Status, got.Sense)
	}
	if len(obs.completed) != 1 {
		t.Error("observer missed invalid CDB")
	}
}

func TestNonIOCommandsSkipRangeCheck(t *testing.T) {
	eng, d, _ := newTestDisk(t, simclock.Millisecond, 0)
	var got *Request
	d.Issue(scsi.Command{Op: scsi.OpTestUnitReady}, func(r *Request) { got = r })
	eng.Run()
	if got.Status != scsi.StatusGood {
		t.Errorf("TEST UNIT READY failed: %v", got.Status)
	}
}

func TestCloseRejectsNewIO(t *testing.T) {
	_, d, _ := newTestDisk(t, simclock.Millisecond, 0)
	d.Close()
	if _, err := d.Issue(scsi.Read(0, 1), nil); err != ErrClosed {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	if _, err := d.IssueCDB([]byte{0xEE}, nil); err != ErrClosed {
		t.Errorf("IssueCDB err = %v, want ErrClosed", err)
	}
}

func TestRemoveObserver(t *testing.T) {
	eng, d, obs := newTestDisk(t, simclock.Millisecond, 0)
	d.RemoveObserver(obs)
	d.Issue(scsi.Read(0, 8), nil)
	eng.Run()
	if len(obs.issued) != 0 {
		t.Error("removed observer still notified")
	}
	d.RemoveObserver(obs) // removing twice is a no-op
}

func TestRequestIDsMonotonic(t *testing.T) {
	eng, d, obs := newTestDisk(t, simclock.Millisecond, 0)
	for i := 0; i < 5; i++ {
		d.Issue(scsi.Read(uint64(i), 1), nil)
	}
	eng.Run()
	for i, r := range obs.issued {
		if r.ID != uint64(i) {
			t.Fatalf("IDs not monotonic: %d at %d", r.ID, i)
		}
	}
}

func TestDoubleCompletionPanics(t *testing.T) {
	eng := simclock.NewEngine()
	var savedDone func(scsi.Status, scsi.Sense)
	backend := BackendFunc(func(r *Request, done func(scsi.Status, scsi.Sense)) {
		savedDone = done
		done(scsi.StatusGood, scsi.Sense{})
	})
	d := NewDisk(eng, backend, DiskConfig{VM: "v", Name: "d", CapacitySectors: 100})
	d.Issue(scsi.Read(0, 1), nil)
	eng.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("double completion should panic")
		}
	}()
	savedDone(scsi.StatusGood, scsi.Sense{})
}

func TestNewDiskValidation(t *testing.T) {
	eng := simclock.NewEngine()
	for _, f := range []func(){
		func() { NewDisk(eng, nil, DiskConfig{CapacitySectors: 1}) },
		func() {
			NewDisk(eng, BackendFunc(func(*Request, func(scsi.Status, scsi.Sense)) {}), DiskConfig{})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkIssueComplete(b *testing.B) {
	eng := simclock.NewEngine()
	backend := BackendFunc(func(r *Request, done func(scsi.Status, scsi.Sense)) {
		done(scsi.StatusGood, scsi.Sense{})
	})
	d := NewDisk(eng, backend, DiskConfig{VM: "v", Name: "d", CapacitySectors: 1 << 30})
	cmd := scsi.Read(0, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cmd.LBA = uint64(i % (1 << 20))
		if _, err := d.Issue(cmd, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAbortInFlightCommand(t *testing.T) {
	eng, d, obs := newTestDisk(t, 10*simclock.Millisecond, 0)
	var got *Request
	r, _ := d.Issue(scsi.Read(0, 8), func(req *Request) { got = req })
	if !d.Abort(r) {
		t.Fatal("abort refused")
	}
	if got == nil || got.Sense.Key != scsi.SenseAbortedCommand || !got.Aborted() {
		t.Fatalf("aborted completion: %+v", got)
	}
	if d.Inflight() != 0 {
		t.Errorf("Inflight = %d", d.Inflight())
	}
	// The backend's late completion must not double-complete.
	eng.Run()
	if len(obs.completed) != 1 {
		t.Errorf("observer completions = %d, want 1", len(obs.completed))
	}
	if d.Abort(r) {
		t.Error("double abort should report false")
	}
}

func TestAbortPendingQueuedCommand(t *testing.T) {
	eng, d, _ := newTestDisk(t, 10*simclock.Millisecond, 1)
	d.Issue(scsi.Read(0, 8), nil) // occupies the single active slot
	var got *Request
	r, _ := d.Issue(scsi.Read(8, 8), func(req *Request) { got = req })
	if !d.Abort(r) {
		t.Fatal("abort of queued command refused")
	}
	if got == nil || got.Sense.Key != scsi.SenseAbortedCommand {
		t.Fatalf("queued abort: %+v", got)
	}
	eng.Run()
	// The first command must still complete normally and the queue drain
	// must not resubmit the aborted request.
	if d.Completed() != 2 || d.Errored() != 1 {
		t.Errorf("completed=%d errored=%d", d.Completed(), d.Errored())
	}
}

func TestAbortAfterCompletionRefused(t *testing.T) {
	eng, d, _ := newTestDisk(t, simclock.Millisecond, 0)
	r, _ := d.Issue(scsi.Read(0, 8), nil)
	eng.Run()
	if d.Abort(r) {
		t.Error("abort after completion should report false")
	}
}
