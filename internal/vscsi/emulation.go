package vscsi

import (
	"encoding/binary"

	"vscsistats/internal/scsi"
)

// This file implements the data-in payloads of the emulated non-I/O SCSI
// commands. ESX "emulates LSI Logic or Bus Logic SCSI devices" (§2): the
// guest driver probes the virtual disk with INQUIRY, READ CAPACITY, MODE
// SENSE and REPORT LUNS during boot, and the emulation answers from the
// disk's configuration without touching the backend.

// Inquiry identity strings, padded per SPC to 8/16/4 bytes.
const (
	inquiryVendor   = "VSCSIST "
	inquiryProduct  = "Virtual disk    "
	inquiryRevision = "1.0 "
)

// EmulateDataIn produces the data-in payload for an emulated command, or
// (nil, false) when the opcode carries no emulated payload (block I/O and
// unknown commands). The payload reflects the virtual disk's configuration
// at call time.
func (d *Disk) EmulateDataIn(cmd scsi.Command) ([]byte, bool) {
	switch cmd.Op {
	case scsi.OpInquiry:
		return d.inquiryData(), true
	case scsi.OpReadCapacity10:
		return d.readCapacity10(), true
	case scsi.OpReadCapacity16:
		return d.readCapacity16(), true
	case scsi.OpReportLuns:
		return d.reportLuns(), true
	case scsi.OpModeSense6:
		return d.modeSense6(), true
	case scsi.OpModeSense10:
		return d.modeSense10(), true
	case scsi.OpRequestSense:
		return d.lastSense.EncodeFixed(), true
	case scsi.OpTestUnitReady, scsi.OpSynchronizeCache10:
		return nil, true // valid commands with no data-in phase
	default:
		return nil, false
	}
}

// inquiryData is standard INQUIRY data (36 bytes): direct-access device,
// SPC-3, with the vendor/product/revision identity.
func (d *Disk) inquiryData() []byte {
	b := make([]byte, 36)
	b[0] = 0x00 // peripheral: direct-access block device, connected
	b[2] = 0x05 // version: SPC-3
	b[3] = 0x02 // response data format 2
	b[4] = 31   // additional length
	b[7] = 0x02 // CmdQue: tagged queuing
	copy(b[8:16], inquiryVendor)
	copy(b[16:32], inquiryProduct)
	copy(b[32:36], inquiryRevision)
	return b
}

// readCapacity10 returns the last LBA (clamped to 0xFFFFFFFF per SBC, which
// tells the initiator to use READ CAPACITY(16)) and the block length.
func (d *Disk) readCapacity10() []byte {
	b := make([]byte, 8)
	last := d.cfg.CapacitySectors - 1
	if last > 0xFFFFFFFF {
		last = 0xFFFFFFFF
	}
	binary.BigEndian.PutUint32(b[0:4], uint32(last))
	binary.BigEndian.PutUint32(b[4:8], scsi.SectorSize)
	return b
}

func (d *Disk) readCapacity16() []byte {
	b := make([]byte, 32)
	binary.BigEndian.PutUint64(b[0:8], d.cfg.CapacitySectors-1)
	binary.BigEndian.PutUint32(b[8:12], scsi.SectorSize)
	return b
}

// reportLuns reports the single LUN 0.
func (d *Disk) reportLuns() []byte {
	b := make([]byte, 16)
	binary.BigEndian.PutUint32(b[0:4], 8) // LUN list length: one entry
	// Entry bytes 8..15 stay zero: LUN 0.
	return b
}

// cachingModePage is mode page 08h: write cache enabled, read cache
// enabled, matching the array model's defaults.
func cachingModePage() []byte {
	page := make([]byte, 20)
	page[0] = 0x08 // page code
	page[1] = 18   // page length
	page[2] = 0x04 // WCE=1, RCD=0
	return page
}

func (d *Disk) modeSense6() []byte {
	page := cachingModePage()
	b := make([]byte, 4, 4+len(page))
	b[0] = byte(3 + len(page)) // mode data length excludes itself
	return append(b, page...)
}

func (d *Disk) modeSense10() []byte {
	page := cachingModePage()
	b := make([]byte, 8, 8+len(page))
	binary.BigEndian.PutUint16(b[0:2], uint16(6+len(page)))
	return append(b, page...)
}

// DecodeCapacity10 and DecodeCapacity16 parse READ CAPACITY payloads, for
// guests (and tests) consuming the emulation.
func DecodeCapacity10(b []byte) (lastLBA uint64, blockLen uint32) {
	return uint64(binary.BigEndian.Uint32(b[0:4])), binary.BigEndian.Uint32(b[4:8])
}

// DecodeCapacity16 parses a READ CAPACITY(16) payload.
func DecodeCapacity16(b []byte) (lastLBA uint64, blockLen uint32) {
	return binary.BigEndian.Uint64(b[0:8]), binary.BigEndian.Uint32(b[8:12])
}
