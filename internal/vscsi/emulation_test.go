package vscsi

import (
	"testing"

	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
)

func emulationDisk(t *testing.T, capacity uint64) (*simclock.Engine, *Disk) {
	t.Helper()
	eng := simclock.NewEngine()
	backend := BackendFunc(func(r *Request, done func(scsi.Status, scsi.Sense)) {
		done(scsi.StatusGood, scsi.Sense{})
	})
	return eng, NewDisk(eng, backend, DiskConfig{VM: "v", Name: "d", CapacitySectors: capacity})
}

func TestEmulateInquiry(t *testing.T) {
	_, d := emulationDisk(t, 1<<20)
	b, ok := d.EmulateDataIn(scsi.Command{Op: scsi.OpInquiry})
	if !ok || len(b) != 36 {
		t.Fatalf("inquiry: ok=%v len=%d", ok, len(b))
	}
	if b[0] != 0 {
		t.Error("peripheral type should be direct-access")
	}
	if string(b[8:16]) != "VSCSIST " {
		t.Errorf("vendor = %q", b[8:16])
	}
	if b[7]&0x02 == 0 {
		t.Error("CmdQue should be set (the device supports queuing)")
	}
}

func TestEmulateReadCapacity(t *testing.T) {
	_, d := emulationDisk(t, 1<<20)
	b, ok := d.EmulateDataIn(scsi.Command{Op: scsi.OpReadCapacity10})
	if !ok {
		t.Fatal("no payload")
	}
	last, blockLen := DecodeCapacity10(b)
	if last != 1<<20-1 || blockLen != 512 {
		t.Errorf("cap10: last=%d block=%d", last, blockLen)
	}
	b, _ = d.EmulateDataIn(scsi.Command{Op: scsi.OpReadCapacity16})
	last, blockLen = DecodeCapacity16(b)
	if last != 1<<20-1 || blockLen != 512 {
		t.Errorf("cap16: last=%d block=%d", last, blockLen)
	}
}

func TestEmulateReadCapacity10ClampsHuge(t *testing.T) {
	_, d := emulationDisk(t, 1<<40)
	b, _ := d.EmulateDataIn(scsi.Command{Op: scsi.OpReadCapacity10})
	last, _ := DecodeCapacity10(b)
	if last != 0xFFFFFFFF {
		t.Errorf("huge disk should clamp: %d", last)
	}
	b, _ = d.EmulateDataIn(scsi.Command{Op: scsi.OpReadCapacity16})
	last16, _ := DecodeCapacity16(b)
	if last16 != 1<<40-1 {
		t.Errorf("cap16 should not clamp: %d", last16)
	}
}

func TestEmulateReportLunsAndModeSense(t *testing.T) {
	_, d := emulationDisk(t, 1<<20)
	b, ok := d.EmulateDataIn(scsi.Command{Op: scsi.OpReportLuns})
	if !ok || len(b) != 16 || b[3] != 8 {
		t.Errorf("report luns: %v %v", ok, b)
	}
	b, ok = d.EmulateDataIn(scsi.Command{Op: scsi.OpModeSense6})
	if !ok || len(b) != 24 || b[4] != 0x08 {
		t.Errorf("mode sense 6: %v % x", ok, b)
	}
	b, ok = d.EmulateDataIn(scsi.Command{Op: scsi.OpModeSense10})
	if !ok || len(b) != 28 || b[8] != 0x08 {
		t.Errorf("mode sense 10: %v % x", ok, b)
	}
}

func TestEmulateRequestSenseReturnsLastError(t *testing.T) {
	eng, d := emulationDisk(t, 1<<20)
	// Zero sense while healthy.
	b, ok := d.EmulateDataIn(scsi.Command{Op: scsi.OpRequestSense})
	if !ok {
		t.Fatal("no sense payload")
	}
	if sense, err := scsi.DecodeFixed(b); err != nil || !sense.IsZero() {
		t.Errorf("initial sense: %v %v", sense, err)
	}
	// Fail a command, then REQUEST SENSE reflects it.
	d.Issue(scsi.Read(1<<20, 8), nil) // out of range
	eng.Run()
	if d.LastSense() != scsi.SenseLBAOutOfRange {
		t.Fatalf("LastSense = %v", d.LastSense())
	}
	b, _ = d.EmulateDataIn(scsi.Command{Op: scsi.OpRequestSense})
	sense, err := scsi.DecodeFixed(b)
	if err != nil || sense != scsi.SenseLBAOutOfRange {
		t.Errorf("sense after error: %v %v", sense, err)
	}
}

func TestEmulateNoPayloadForBlockIO(t *testing.T) {
	_, d := emulationDisk(t, 1<<20)
	if _, ok := d.EmulateDataIn(scsi.Read(0, 8)); ok {
		t.Error("block I/O must not be emulated")
	}
	if b, ok := d.EmulateDataIn(scsi.Command{Op: scsi.OpTestUnitReady}); !ok || b != nil {
		t.Error("TEST UNIT READY is valid but carries no data")
	}
	if _, ok := d.EmulateDataIn(scsi.Command{Op: scsi.OpCode(0xEE)}); ok {
		t.Error("unknown opcode must not be emulated")
	}
}
