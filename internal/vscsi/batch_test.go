package vscsi

import (
	"testing"

	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
)

// recObserver records per-request observer calls.
type recObserver struct {
	issued    []*Request
	completed []*Request
}

func (o *recObserver) OnIssue(r *Request)    { o.issued = append(o.issued, r) }
func (o *recObserver) OnComplete(r *Request) { o.completed = append(o.completed, r) }

// recBatchObserver additionally records whole-burst deliveries.
type recBatchObserver struct {
	recObserver
	batches [][]*Request
}

func (o *recBatchObserver) OnIssueBatch(rs []*Request) { o.batches = append(o.batches, rs) }

// asyncBackend completes every command after a fixed engine delay, like the
// storage models do.
func asyncBackend(eng *simclock.Engine, delay simclock.Time) Backend {
	return BackendFunc(func(r *Request, done func(scsi.Status, scsi.Sense)) {
		eng.After(delay, func(simclock.Time) { done(scsi.StatusGood, scsi.Sense{}) })
	})
}

// TestIssueBatchMatchesLoop pins the batched path to the sequential loop:
// same commands, same IDs, same issue times, same OutstandingAtIssue, same
// completions.
func TestIssueBatchMatchesLoop(t *testing.T) {
	cmds := []scsi.Command{
		scsi.Read(0, 8), scsi.Write(64, 16), scsi.Read(128, 8), scsi.Read(4096, 32),
	}
	run := func(batch bool) (*recObserver, []*Request) {
		eng := simclock.NewEngine()
		d := NewDisk(eng, asyncBackend(eng, simclock.Millisecond), DiskConfig{
			VM: "vm", Name: "d", CapacitySectors: 1 << 20,
		})
		obs := &recObserver{}
		d.AddObserver(obs)
		var rs []*Request
		if batch {
			var err error
			rs, err = d.IssueBatch(cmds, nil)
			if err != nil {
				t.Fatal(err)
			}
		} else {
			for _, c := range cmds {
				r, err := d.Issue(c, nil)
				if err != nil {
					t.Fatal(err)
				}
				rs = append(rs, r)
			}
		}
		eng.Run()
		return obs, rs
	}
	lo, lr := run(false)
	bo, br := run(true)
	if len(lr) != len(br) || len(lo.issued) != len(bo.issued) {
		t.Fatalf("request counts differ: loop %d/%d, batch %d/%d",
			len(lr), len(lo.issued), len(br), len(bo.issued))
	}
	for i := range lr {
		l, b := lr[i], br[i]
		if l.ID != b.ID || l.IssueTime != b.IssueTime ||
			l.OutstandingAtIssue != b.OutstandingAtIssue ||
			l.CompleteTime != b.CompleteTime || l.Status != b.Status {
			t.Errorf("request %d differs: loop %+v batch %+v", i, l, b)
		}
	}
	if lo.issued[2] != lr[2] || bo.issued[2] != br[2] {
		t.Error("observer saw requests out of order")
	}
}

// TestIssueBatchDeliversToBatchObserver checks that a BatchObserver gets one
// burst call (and no per-request OnIssue), while plain observers on the same
// disk keep getting per-request calls.
func TestIssueBatchDeliversToBatchObserver(t *testing.T) {
	eng := simclock.NewEngine()
	d := NewDisk(eng, asyncBackend(eng, simclock.Millisecond), DiskConfig{
		VM: "vm", Name: "d", CapacitySectors: 1 << 20,
	})
	batch := &recBatchObserver{}
	plain := &recObserver{}
	d.AddObserver(batch)
	d.AddObserver(plain)
	cmds := []scsi.Command{scsi.Read(0, 8), scsi.Write(8, 8), scsi.Read(16, 8)}
	rs, err := d.IssueBatch(cmds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.batches) != 1 || len(batch.batches[0]) != 3 {
		t.Fatalf("batch observer got %d bursts, want 1 of 3", len(batch.batches))
	}
	if len(batch.issued) != 0 {
		t.Fatalf("batch observer also got %d per-request OnIssue calls", len(batch.issued))
	}
	if len(plain.issued) != 3 {
		t.Fatalf("plain observer got %d OnIssue calls, want 3", len(plain.issued))
	}
	eng.Run()
	if len(batch.completed) != 3 || len(plain.completed) != 3 {
		t.Fatalf("completions: batch %d plain %d, want 3 each",
			len(batch.completed), len(plain.completed))
	}
	for i, r := range rs {
		if r.OutstandingAtIssue != i {
			t.Errorf("request %d OutstandingAtIssue = %d, want %d", i, r.OutstandingAtIssue, i)
		}
	}
}

// TestIssueBatchValidationAndQueueing covers the non-happy paths: invalid
// LBAs complete with CHECK CONDITION (observers included), the MaxActive
// limit queues excess burst members, and a closed disk refuses the burst.
func TestIssueBatchValidationAndQueueing(t *testing.T) {
	eng := simclock.NewEngine()
	d := NewDisk(eng, asyncBackend(eng, simclock.Millisecond), DiskConfig{
		VM: "vm", Name: "d", CapacitySectors: 100, MaxActive: 1,
	})
	obs := &recObserver{}
	d.AddObserver(obs)
	cmds := []scsi.Command{
		scsi.Read(0, 8),
		scsi.Read(200, 8), // out of range
		scsi.Read(8, 8),   // queued behind MaxActive
	}
	rs, err := d.IssueBatch(cmds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs[1].Status != scsi.StatusCheckCondition {
		t.Errorf("out-of-range command status = %v", rs[1].Status)
	}
	if got := d.Inflight(); got != 2 {
		t.Errorf("inflight after batch = %d, want 2", got)
	}
	eng.Run()
	if rs[0].Status != scsi.StatusGood || rs[2].Status != scsi.StatusGood {
		t.Errorf("valid commands did not complete GOOD: %v %v", rs[0].Status, rs[2].Status)
	}
	if len(obs.issued) != 3 || len(obs.completed) != 3 {
		t.Errorf("observer saw %d issues / %d completions, want 3/3",
			len(obs.issued), len(obs.completed))
	}

	if rs, err := d.IssueBatch(nil, nil); err != nil || rs != nil {
		t.Errorf("empty batch: got %v, %v", rs, err)
	}
	d.Close()
	if _, err := d.IssueBatch(cmds, nil); err != ErrClosed {
		t.Errorf("closed disk batch error = %v, want ErrClosed", err)
	}
}
